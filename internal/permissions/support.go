package permissions

import (
	"fmt"
	"sort"
	"strings"
)

// Browser identifies a browser engine family for the support matrix.
type Browser uint8

const (
	Chromium Browser = iota
	Firefox
	Safari
)

var browserNames = map[Browser]string{
	Chromium: "Chromium",
	Firefox:  "Firefox",
	Safari:   "Safari",
}

func (b Browser) String() string { return browserNames[b] }

// Browsers lists the engines the support tool tracks.
var Browsers = []Browser{Chromium, Firefox, Safari}

// Support describes one browser's support for one permission, in the
// style of the paper's caniuse-like website (Appendix A.6): the tool
// "details which permissions are supported and whether they are
// classified as policy-controlled or powerful by different browser
// vendors", and "tracks historical changes across browser versions".
type Support struct {
	// Since is the first major version with API support (0 = unsupported).
	Since int
	// PolicySince is the first major version that honors this permission
	// in the allow attribute / Permissions-Policy (0 = never).
	PolicySince int
	// RemovedIn, when non-zero, is the version that removed the feature
	// (e.g. interest-cohort / FLoC).
	RemovedIn int
}

// Supported reports support at the given version.
func (s Support) Supported(version int) bool {
	if s.Since == 0 || version < s.Since {
		return false
	}
	return s.RemovedIn == 0 || version < s.RemovedIn
}

// PolicySupported reports allow-attribute/header enforcement at version.
func (s Support) PolicySupported(version int) bool {
	if s.PolicySince == 0 || version < s.PolicySince {
		return false
	}
	return s.RemovedIn == 0 || version < s.RemovedIn
}

// HeaderSupport records which response headers an engine enforces
// (§2.2.6: only Chromium supports the Permissions-Policy header; the
// deprecated Feature-Policy header is still enforced there as fallback).
type HeaderSupport struct {
	PermissionsPolicy bool
	FeaturePolicy     bool
	AllowAttribute    bool
}

// Headers is the per-engine header support matrix.
var Headers = map[Browser]HeaderSupport{
	Chromium: {PermissionsPolicy: true, FeaturePolicy: true, AllowAttribute: true},
	Firefox:  {PermissionsPolicy: false, FeaturePolicy: false, AllowAttribute: true},
	Safari:   {PermissionsPolicy: false, FeaturePolicy: false, AllowAttribute: true},
}

// supportMatrix maps permission name → engine → support record. Versions
// are modeled on the public release history; the exact integers matter
// only to the historical-change tracker, not to any paper table.
var supportMatrix = map[string]map[Browser]Support{}

func setSupport(name string, ch, chPolicy, ff, ffPolicy, sf, sfPolicy int) {
	supportMatrix[name] = map[Browser]Support{
		Chromium: {Since: ch, PolicySince: chPolicy},
		Firefox:  {Since: ff, PolicySince: ffPolicy},
		Safari:   {Since: sf, PolicySince: sfPolicy},
	}
}

func init() {
	// name, chromium api/policy, firefox api/policy, safari api/policy.
	setSupport("camera", 21, 60, 36, 74, 11, 12)
	setSupport("microphone", 21, 60, 36, 74, 11, 12)
	setSupport("geolocation", 5, 60, 3, 74, 5, 12)
	setSupport("display-capture", 72, 72, 66, 74, 13, 13)
	setSupport("notifications", 22, 0, 22, 0, 7, 0)
	setSupport("push", 42, 0, 44, 0, 16, 0)
	setSupport("battery", 38, 94, 43, 0, 0, 0)
	setSupport("accelerometer", 67, 67, 0, 0, 0, 0)
	setSupport("gyroscope", 67, 67, 0, 0, 0, 0)
	setSupport("magnetometer", 67, 67, 0, 0, 0, 0)
	setSupport("ambient-light-sensor", 67, 67, 0, 0, 0, 0)
	setSupport("autoplay", 66, 66, 66, 74, 11, 0)
	setSupport("encrypted-media", 42, 64, 38, 74, 12, 0)
	setSupport("fullscreen", 15, 62, 9, 74, 5, 12)
	setSupport("picture-in-picture", 70, 70, 0, 0, 13, 0)
	setSupport("clipboard-read", 66, 86, 63, 0, 13, 0)
	setSupport("clipboard-write", 66, 86, 63, 0, 13, 0)
	setSupport("web-share", 89, 89, 71, 0, 12, 0)
	setSupport("gamepad", 21, 86, 29, 0, 10, 0)
	setSupport("payment", 60, 60, 56, 0, 11, 0)
	setSupport("midi", 43, 64, 99, 0, 0, 0)
	setSupport("usb", 61, 64, 0, 0, 0, 0)
	setSupport("serial", 89, 89, 0, 0, 0, 0)
	setSupport("hid", 89, 89, 0, 0, 0, 0)
	setSupport("bluetooth", 56, 104, 0, 0, 0, 0)
	setSupport("storage-access", 119, 119, 65, 0, 11, 0)
	setSupport("top-level-storage-access", 113, 113, 0, 0, 0, 0)
	setSupport("publickey-credentials-get", 67, 84, 60, 0, 13, 0)
	setSupport("publickey-credentials-create", 67, 110, 60, 0, 13, 0)
	setSupport("identity-credentials-get", 108, 110, 0, 0, 0, 0)
	setSupport("otp-credentials", 84, 84, 0, 0, 0, 0)
	setSupport("idle-detection", 94, 94, 0, 0, 0, 0)
	setSupport("screen-wake-lock", 84, 84, 126, 0, 16, 0)
	setSupport("system-wake-lock", 0, 0, 0, 0, 0, 0)
	setSupport("keyboard-lock", 68, 0, 0, 0, 0, 0)
	setSupport("keyboard-map", 69, 98, 0, 0, 0, 0)
	setSupport("pointer-lock", 37, 0, 50, 0, 10, 0)
	setSupport("local-fonts", 103, 103, 0, 0, 0, 0)
	setSupport("window-management", 100, 111, 0, 0, 0, 0)
	setSupport("compute-pressure", 125, 125, 0, 0, 0, 0)
	setSupport("direct-sockets", 0, 0, 0, 0, 0, 0)
	setSupport("attribution-reporting", 115, 115, 0, 0, 0, 0)
	setSupport("browsing-topics", 115, 115, 0, 0, 0, 0)
	setSupport("run-ad-auction", 115, 115, 0, 0, 0, 0)
	setSupport("join-ad-interest-group", 115, 115, 0, 0, 0, 0)
	setSupport("private-state-token-issuance", 115, 115, 0, 0, 0, 0)
	setSupport("sync-xhr", 1, 65, 1, 0, 1, 0)
	setSupport("cross-origin-isolated", 87, 87, 0, 0, 0, 0)
	setSupport("vr", 0, 62, 0, 0, 0, 0)
	setSupport("xr-spatial-tracking", 79, 79, 0, 0, 0, 0)
	setSupport("speaker-selection", 0, 0, 116, 0, 0, 0)
	// interest-cohort (FLoC) shipped in 89 and was removed in 115.
	supportMatrix["interest-cohort"] = map[Browser]Support{
		Chromium: {Since: 89, PolicySince: 89, RemovedIn: 115},
		Firefox:  {},
		Safari:   {},
	}
	for _, hint := range []string{
		"ch-ua", "ch-ua-arch", "ch-ua-bitness", "ch-ua-full-version",
		"ch-ua-full-version-list", "ch-ua-mobile", "ch-ua-model",
		"ch-ua-platform", "ch-ua-platform-version", "ch-ua-wow64",
	} {
		setSupport(hint, 89, 89, 0, 0, 0, 0)
	}
}

// SupportFor returns the support record for (name, browser).
func SupportFor(name string, b Browser) (Support, bool) {
	m, ok := supportMatrix[strings.ToLower(name)]
	if !ok {
		return Support{}, false
	}
	return m[b], true
}

// SupportedIn reports whether permission name has API support in the
// given browser version.
func SupportedIn(name string, b Browser, version int) bool {
	s, ok := SupportFor(name, b)
	return ok && s.Supported(version)
}

// SupportedPermissions returns the sorted names of permissions with API
// support in the given browser at the given version. This drives the
// header generator's "supported permissions" list (§6.3).
func SupportedPermissions(b Browser, version int) []string {
	var out []string
	for name, m := range supportMatrix {
		if m[b].Supported(version) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Change is one historical support transition for the change tracker
// (Appendix A.6: "tracks historical changes across browser versions").
type Change struct {
	Permission string
	Browser    Browser
	Version    int
	Kind       string // "added", "policy-added", "removed"
}

func (c Change) String() string {
	return fmt.Sprintf("%s %d: %s %s", c.Browser, c.Version, c.Permission, c.Kind)
}

// ChangesBetween returns every support change in (from, to] for a
// browser, sorted by version then permission.
func ChangesBetween(b Browser, from, to int) []Change {
	var out []Change
	for name, m := range supportMatrix {
		s := m[b]
		if s.Since > from && s.Since <= to {
			out = append(out, Change{Permission: name, Browser: b, Version: s.Since, Kind: "added"})
		}
		if s.PolicySince > from && s.PolicySince <= to {
			out = append(out, Change{Permission: name, Browser: b, Version: s.PolicySince, Kind: "policy-added"})
		}
		if s.RemovedIn > from && s.RemovedIn <= to {
			out = append(out, Change{Permission: name, Browser: b, Version: s.RemovedIn, Kind: "removed"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Version != out[j].Version {
			return out[i].Version < out[j].Version
		}
		return out[i].Permission < out[j].Permission
	})
	return out
}

// FingerprintSurface returns, for a browser version, the sorted list of
// supported permission names. §4.1.1 observes that retrieving the full
// permission list "enables fingerprinting by revealing differences in
// permission support across browsers and even across versions": two
// versions with different surfaces are distinguishable.
func FingerprintSurface(b Browser, version int) []string {
	return SupportedPermissions(b, version)
}
