package permissions

// GeneralAPI identifies the cross-cutting "General Permission APIs" of
// §4.1.1: functions defined by the Permissions specification, the
// Permissions Policy specification, and the deprecated Feature Policy
// API that Chromium still exposes (the paper found 429,259 websites
// still relying on the old name).
type GeneralAPI struct {
	// Expr is the JavaScript expression (also the static-match pattern).
	Expr string
	// Spec names the defining specification.
	Spec string
	// Deprecated marks Feature-Policy-era names.
	Deprecated bool
	// StatusCheck marks APIs that query permission status (feeding the
	// Table 5 "Invocations for Permission Status" analysis).
	StatusCheck bool
}

// GeneralAPIs is the instrumented general-purpose API list of
// Appendix A.4.
var GeneralAPIs = []GeneralAPI{
	{Expr: "navigator.permissions.query", Spec: "Permissions", StatusCheck: true},
	{Expr: "navigator.permissions", Spec: "Permissions"},
	{Expr: "document.permissionsPolicy.allowedFeatures", Spec: "Permissions Policy", StatusCheck: true},
	{Expr: "document.permissionsPolicy.allowsFeature", Spec: "Permissions Policy", StatusCheck: true},
	{Expr: "document.permissionsPolicy.features", Spec: "Permissions Policy", StatusCheck: true},
	{Expr: "document.permissionsPolicy", Spec: "Permissions Policy"},
	{Expr: "document.featurePolicy.allowedFeatures", Spec: "Feature Policy", Deprecated: true, StatusCheck: true},
	{Expr: "document.featurePolicy.allowsFeature", Spec: "Feature Policy", Deprecated: true, StatusCheck: true},
	{Expr: "document.featurePolicy.features", Spec: "Feature Policy", Deprecated: true, StatusCheck: true},
	{Expr: "document.featurePolicy", Spec: "Feature Policy", Deprecated: true},
}

// IsGeneralAPI reports whether expr is one of the general permission
// APIs, and returns its record.
func IsGeneralAPI(expr string) (GeneralAPI, bool) {
	for _, g := range GeneralAPIs {
		if g.Expr == expr {
			return g, true
		}
	}
	return GeneralAPI{}, false
}

// GeneralAPIDisplayName is the row label the paper's Table 4 uses.
const GeneralAPIDisplayName = "General Permission APIs"
