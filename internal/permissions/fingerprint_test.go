package permissions

import (
	"testing"
)

func TestIdentifyFromSurface(t *testing.T) {
	// A script retrieving the full supported-permission list can narrow
	// down the browser version — the §4.1.1 fingerprinting vector.
	surface := FingerprintSurface(Chromium, 127)
	ranges := IdentifyFromSurface(surface)
	if len(ranges) == 0 {
		t.Fatal("surface must identify at least one engine range")
	}
	found := false
	for _, r := range ranges {
		if r.Browser == Chromium && r.MinVer <= 127 && 127 <= r.MaxVer {
			found = true
		}
		if r.Browser != Chromium {
			t.Errorf("Chromium 127 surface misattributed to %v", r)
		}
	}
	if !found {
		t.Errorf("Chromium 127 not in identified ranges: %v", ranges)
	}
}

func TestIdentifyDistinguishesEngines(t *testing.T) {
	ffSurface := FingerprintSurface(Firefox, 120)
	for _, r := range IdentifyFromSurface(ffSurface) {
		if r.Browser == Chromium {
			t.Errorf("Firefox surface identified as Chromium: %v", r)
		}
	}
}

func TestIdentifyVersionBoundary(t *testing.T) {
	// Chromium 114 vs 115 differ (FLoC removed, Privacy Sandbox added):
	// their surfaces must identify disjoint ranges.
	r114 := IdentifyFromSurface(FingerprintSurface(Chromium, 114))
	r115 := IdentifyFromSurface(FingerprintSurface(Chromium, 115))
	for _, a := range r114 {
		for _, b := range r115 {
			if a.Browser == b.Browser && a.MinVer <= b.MaxVer && b.MinVer <= a.MaxVer {
				t.Errorf("ranges overlap: %v vs %v", a, b)
			}
		}
	}
}

func TestIdentifyUnknownSurface(t *testing.T) {
	if got := IdentifyFromSurface([]string{"made-up-feature"}); len(got) != 0 {
		t.Errorf("nonsense surface identified: %v", got)
	}
}

func TestSurfaceEntropy(t *testing.T) {
	n := SurfaceEntropy()
	if n < 10 {
		t.Errorf("fingerprint alphabet too small: %d distinct surfaces", n)
	}
	t.Logf("distinct permission surfaces across engines/versions: %d", n)
}
