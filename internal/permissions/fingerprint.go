package permissions

import (
	"fmt"
	"sort"
	"strings"
)

// EngineRange is a contiguous range of browser versions consistent with
// an observed permission surface.
type EngineRange struct {
	Browser  Browser
	MinVer   int
	MaxVer   int
	ExactSet bool // the surface matched exactly (vs. subset heuristics)
}

func (e EngineRange) String() string {
	if e.MinVer == e.MaxVer {
		return fmt.Sprintf("%s %d", e.Browser, e.MinVer)
	}
	return fmt.Sprintf("%s %d-%d", e.Browser, e.MinVer, e.MaxVer)
}

// identifyRange is the version span the identifier scans.
const (
	identifyMin = 40
	identifyMax = 140
)

// IdentifyFromSurface determines which (engine, version-range) pairs
// are consistent with an observed supported-permission list — the
// fingerprinting vector of §4.1.1: "permission lists could fingerprint
// browsers and versions" because the supported set differs across
// engines and across versions of the same engine. The paper suggests
// the vector; this function demonstrates it end to end.
func IdentifyFromSurface(surface []string) []EngineRange {
	want := map[string]bool{}
	for _, s := range surface {
		want[strings.ToLower(strings.TrimSpace(s))] = true
	}
	var out []EngineRange
	for _, b := range Browsers {
		var current *EngineRange
		for v := identifyMin; v <= identifyMax; v++ {
			if surfaceEquals(want, b, v) {
				if current == nil {
					out = append(out, EngineRange{Browser: b, MinVer: v, MaxVer: v, ExactSet: true})
					current = &out[len(out)-1]
				} else {
					current.MaxVer = v
				}
			} else {
				current = nil
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Browser != out[j].Browser {
			return out[i].Browser < out[j].Browser
		}
		return out[i].MinVer < out[j].MinVer
	})
	return out
}

func surfaceEquals(want map[string]bool, b Browser, version int) bool {
	have := SupportedPermissions(b, version)
	if len(have) != len(want) {
		return false
	}
	for _, name := range have {
		if !want[name] {
			return false
		}
	}
	return true
}

// SurfaceEntropy reports how many distinct surfaces exist across the
// scanned version range — the effective fingerprint alphabet size.
func SurfaceEntropy() int {
	seen := map[string]bool{}
	for _, b := range Browsers {
		for v := identifyMin; v <= identifyMax; v++ {
			seen[surfaceKey(b, v)] = true
		}
	}
	return len(seen)
}

func surfaceKey(b Browser, v int) string {
	return fmt.Sprintf("%d:%s", b, strings.Join(SupportedPermissions(b, v), ","))
}
