package origin

import (
	"testing"
)

func TestDefaultPortNormalization(t *testing.T) {
	tests := []struct{ raw, want string }{
		{"ws://example.com:80/socket", "ws://example.com"},
		{"wss://example.com:443/socket", "wss://example.com"},
		{"wss://example.com:8443/socket", "wss://example.com:8443"},
		{"ftp://example.com:21/file", "ftp://example.com"},
		{"http://example.com:443", "http://example.com:443"}, // 443 is not http's default
		{"https://example.com:80", "https://example.com:80"}, // 80 is not https's default
	}
	for _, tt := range tests {
		o, err := Parse(tt.raw)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.raw, err)
			continue
		}
		if got := o.String(); got != tt.want {
			t.Errorf("Parse(%q) = %q; want %q", tt.raw, got, tt.want)
		}
	}
}

func TestIPLiteralOrigins(t *testing.T) {
	o := MustParse("https://127.0.0.1:8443/path")
	if o.Host != "127.0.0.1" || o.Port != "8443" {
		t.Errorf("IPv4 literal: %+v", o)
	}
	if o.Site() != "127.0.0.1" {
		t.Errorf("an IP is its own site: %q", o.Site())
	}
	b := MustParse("https://127.0.0.1:9999")
	if o.SameOrigin(b) {
		t.Error("different ports on an IP are different origins")
	}
	if !o.SameSite(b) {
		t.Error("same IP is same site regardless of port")
	}
}

func TestSchemeCaseInsensitive(t *testing.T) {
	a := MustParse("HTTPS://EXAMPLE.COM")
	b := MustParse("https://example.com")
	if !a.SameOrigin(b) {
		t.Error("scheme and host comparison must be case-insensitive")
	}
}

func TestLocalSchemeParse(t *testing.T) {
	for _, raw := range []string{"about:blank", "data:,x", "blob:null/u", "javascript:1"} {
		o, err := Parse(raw)
		if err != nil {
			t.Errorf("Parse(%q): %v", raw, err)
			continue
		}
		if !o.IsOpaque() {
			t.Errorf("Parse(%q) must be opaque: %+v", raw, o)
		}
		if o.Scheme == "" {
			t.Errorf("Parse(%q) must retain the scheme", raw)
		}
	}
}

func BenchmarkParseOrigin(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("https://deep.sub.example.co.uk:8443/path?q=1"); err != nil {
			b.Fatal(err)
		}
	}
}
