// Package origin models web origins and sites the way the Permissions
// Policy specification and the paper use them: tuple origins
// (scheme, host, port), opaque origins for local-scheme documents, the
// same-origin and same-site relations, and ASCII serialization.
//
// The paper's analysis distinguishes three granularities:
//
//   - origin: scheme://host:port, the unit at which allowlists match;
//   - site: the registrable domain (eTLD+1), the unit at which scripts
//     and frames are classified first- vs third-party;
//   - local-scheme documents (about:, data:, blob:, javascript:), which
//     carry opaque origins, never issue network requests, and are the
//     subject of the specification issue in Section 6.2.
package origin

import (
	"errors"
	"fmt"
	"net/url"
	"strings"

	"permodyssey/internal/psl"
)

// Origin is a web origin. Tuple origins have Scheme/Host/Port set; opaque
// origins have Opaque set and compare equal only to themselves (by ID).
type Origin struct {
	Scheme string
	Host   string
	Port   string // normalized: empty when it is the scheme default

	// Opaque is non-zero for opaque origins (local-scheme documents and
	// sandboxed frames). Each opaque origin gets a unique ID; two opaque
	// origins are same-origin only when their IDs match.
	Opaque uint64
}

// ErrUnparseable is returned by Parse for inputs that cannot be
// interpreted as an origin.
var ErrUnparseable = errors.New("origin: unparseable")

// localSchemes are the schemes the Fetch Standard calls local, plus
// javascript:, which the paper groups with them because such iframes also
// issue no network request.
var localSchemes = map[string]bool{
	"about":      true,
	"data":       true,
	"blob":       true,
	"javascript": true,
}

// IsLocalScheme reports whether scheme (without the colon) is a local
// scheme in the paper's sense.
func IsLocalScheme(scheme string) bool {
	return localSchemes[strings.ToLower(scheme)]
}

// IsLocalURL reports whether the raw URL uses a local scheme. An empty
// src and "about:blank"-style values count as local.
func IsLocalURL(raw string) bool {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return true
	}
	colon := strings.IndexByte(raw, ':')
	if colon < 0 {
		return false
	}
	return IsLocalScheme(raw[:colon])
}

var defaultPorts = map[string]string{
	"http":  "80",
	"https": "443",
	"ws":    "80",
	"wss":   "443",
	"ftp":   "21",
}

// Parse derives the origin of a URL string. Local-scheme URLs produce an
// opaque origin with ID 0 (callers that need distinguishable opaque
// origins should use NewOpaque). Scheme-relative and bare-host inputs
// default to https, matching how allowlist entries like "example.com"
// are interpreted by browsers.
func Parse(raw string) (Origin, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return Origin{}, ErrUnparseable
	}
	if IsLocalURL(raw) {
		return Origin{Opaque: 0, Scheme: schemeOf(raw)}, nil
	}
	if strings.HasPrefix(raw, "//") {
		raw = "https:" + raw
	} else if !strings.Contains(raw, "://") {
		raw = "https://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return Origin{}, fmt.Errorf("%w: %v", ErrUnparseable, err)
	}
	host := strings.ToLower(u.Hostname())
	if host == "" || !validHost(host) {
		return Origin{}, fmt.Errorf("%w: no host in %q", ErrUnparseable, raw)
	}
	scheme := strings.ToLower(u.Scheme)
	port := u.Port()
	if port == defaultPorts[scheme] {
		port = ""
	}
	return Origin{Scheme: scheme, Host: host, Port: port}, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(raw string) Origin {
	o, err := Parse(raw)
	if err != nil {
		panic(err)
	}
	return o
}

func schemeOf(raw string) string {
	if i := strings.IndexByte(raw, ':'); i >= 0 {
		return strings.ToLower(raw[:i])
	}
	return ""
}

// validHost accepts DNS-ish hostnames and IP literals; it rejects the
// garbage url.Parse tolerates (e.g. bare runs of colons).
func validHost(host string) bool {
	if strings.ContainsRune(host, ':') {
		// Only IPv6 literals may contain colons; require at least one
		// hex digit so strings like ":::" are rejected.
		hasHex := false
		for _, c := range host {
			switch {
			case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
				hasHex = true
			case c == ':':
			default:
				return false
			}
		}
		return hasHex
	}
	for _, c := range host {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

var opaqueCounter uint64

// NewOpaque returns a fresh opaque origin distinct from every other.
// Not safe for concurrent use; the browser serializes frame creation.
func NewOpaque(scheme string) Origin {
	opaqueCounter++
	return Origin{Opaque: opaqueCounter, Scheme: strings.ToLower(scheme)}
}

// IsOpaque reports whether o is an opaque origin.
func (o Origin) IsOpaque() bool { return o.Host == "" }

// String serializes the origin. Opaque origins serialize as "null", as
// they do in the Origin response header.
func (o Origin) String() string {
	if o.IsOpaque() {
		return "null"
	}
	s := o.Scheme + "://" + o.Host
	if o.Port != "" {
		s += ":" + o.Port
	}
	return s
}

// SameOrigin reports whether a and b are the same origin. Opaque origins
// are same-origin only with themselves (identical non-zero IDs).
func (o Origin) SameOrigin(other Origin) bool {
	if o.IsOpaque() || other.IsOpaque() {
		return o.IsOpaque() && other.IsOpaque() &&
			o.Opaque != 0 && o.Opaque == other.Opaque
	}
	return o.Scheme == other.Scheme && o.Host == other.Host && o.Port == other.Port
}

// Site returns the registrable domain of the origin's host, or "" for
// opaque origins. This is the paper's notion of "site" used for 1P/3P
// classification.
func (o Origin) Site() string {
	if o.IsOpaque() {
		return ""
	}
	return psl.Default.RegistrableDomain(o.Host)
}

// SameSite reports whether two origins belong to the same site
// (schemelessly, per the paper's definition: "the site of the script
// differs from the site of the frame"). Opaque origins are never
// same-site with anything.
func (o Origin) SameSite(other Origin) bool {
	if o.IsOpaque() || other.IsOpaque() {
		return false
	}
	s := o.Site()
	return s != "" && s == other.Site()
}

// SiteOfURL returns the registrable domain for a raw URL, or "" when the
// URL is local-scheme or unparseable. Convenience used throughout the
// analysis pipeline.
func SiteOfURL(raw string) string {
	o, err := Parse(raw)
	if err != nil {
		return ""
	}
	return o.Site()
}
