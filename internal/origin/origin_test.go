package origin

import (
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	tests := []struct {
		raw  string
		want string
	}{
		{"https://example.com", "https://example.com"},
		{"https://example.com/", "https://example.com"},
		{"https://example.com:443/path?q=1", "https://example.com"},
		{"https://example.com:8443", "https://example.com:8443"},
		{"http://example.com:80", "http://example.com"},
		{"http://Example.COM/Path", "http://example.com"},
		{"//cdn.example.com/lib.js", "https://cdn.example.com"},
		{"example.com", "https://example.com"},
		{"example.com:444", "https://example.com:444"},
		{"data:text/html,<h1>hi</h1>", "null"},
		{"about:blank", "null"},
		{"about:srcdoc", "null"},
		{"blob:https://example.com/uuid", "null"},
		{"javascript:void(0)", "null"},
		{"", ""},
	}
	for _, tt := range tests {
		o, err := Parse(tt.raw)
		if tt.want == "" {
			if err == nil {
				t.Errorf("Parse(%q): expected error, got %v", tt.raw, o)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.raw, err)
			continue
		}
		if got := o.String(); got != tt.want {
			t.Errorf("Parse(%q) = %q; want %q", tt.raw, got, tt.want)
		}
	}
}

func TestSameOrigin(t *testing.T) {
	a := MustParse("https://example.com")
	b := MustParse("https://example.com:443/other")
	if !a.SameOrigin(b) {
		t.Error("default port should normalize to same origin")
	}
	c := MustParse("http://example.com")
	if a.SameOrigin(c) {
		t.Error("scheme differs: not same origin")
	}
	d := MustParse("https://example.com:8443")
	if a.SameOrigin(d) {
		t.Error("port differs: not same origin")
	}
	e := MustParse("https://www.example.com")
	if a.SameOrigin(e) {
		t.Error("host differs: not same origin")
	}
}

func TestOpaqueOrigins(t *testing.T) {
	o1 := NewOpaque("data")
	o2 := NewOpaque("data")
	if !o1.IsOpaque() || !o2.IsOpaque() {
		t.Fatal("NewOpaque must produce opaque origins")
	}
	if o1.SameOrigin(o2) {
		t.Error("distinct opaque origins must not be same-origin")
	}
	if !o1.SameOrigin(o1) {
		t.Error("an opaque origin is same-origin with itself")
	}
	parsed := MustParse("data:text/html,x")
	if parsed.SameOrigin(parsed) {
		t.Error("Parse-produced opaque origin (ID 0) must not even equal itself")
	}
	if o1.Site() != "" {
		t.Error("opaque origins have no site")
	}
	if o1.SameSite(o1) {
		t.Error("opaque origins are never same-site")
	}
	if o1.String() != "null" {
		t.Errorf("opaque origin serializes as null, got %q", o1.String())
	}
}

func TestSameSite(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"https://www.example.com", "https://api.example.com", true},
		{"https://example.com", "http://example.com", true}, // schemeless site
		{"https://example.com", "https://example.org", false},
		{"https://a.github.io", "https://b.github.io", false},
		{"https://example.com:8443", "https://example.com", true},
	}
	for _, tt := range tests {
		a, b := MustParse(tt.a), MustParse(tt.b)
		if got := a.SameSite(b); got != tt.want {
			t.Errorf("SameSite(%q, %q) = %v; want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestIsLocalURL(t *testing.T) {
	tests := []struct {
		raw  string
		want bool
	}{
		{"about:blank", true},
		{"data:text/html,hello", true},
		{"blob:https://x.com/u", true},
		{"javascript:alert(1)", true},
		{"", true},
		{"https://example.com", false},
		{"example.com", false},
		{"DATA:text/plain,x", true},
	}
	for _, tt := range tests {
		if got := IsLocalURL(tt.raw); got != tt.want {
			t.Errorf("IsLocalURL(%q) = %v; want %v", tt.raw, got, tt.want)
		}
	}
}

func TestSiteOfURL(t *testing.T) {
	if got := SiteOfURL("https://sub.widget.example.co.uk/embed?x=1"); got != "example.co.uk" {
		t.Errorf("SiteOfURL = %q", got)
	}
	if got := SiteOfURL("data:text/html,x"); got != "" {
		t.Errorf("local URL has no site, got %q", got)
	}
	if got := SiteOfURL("::::"); got != "" {
		t.Errorf("unparseable URL has no site, got %q", got)
	}
}

// Property: SameOrigin and SameSite are symmetric, and SameOrigin implies
// SameSite for non-opaque origins with a registrable domain.
func TestRelationProperties(t *testing.T) {
	pool := []string{
		"https://example.com", "https://www.example.com",
		"http://example.com", "https://example.com:8443",
		"https://other.org", "https://a.github.io", "https://b.github.io",
	}
	sym := func(i, j uint8) bool {
		a := MustParse(pool[int(i)%len(pool)])
		b := MustParse(pool[int(j)%len(pool)])
		return a.SameOrigin(b) == b.SameOrigin(a) && a.SameSite(b) == b.SameSite(a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	implies := func(i uint8) bool {
		a := MustParse(pool[int(i)%len(pool)])
		if a.Site() == "" {
			return true
		}
		return a.SameSite(a)
	}
	if err := quick.Check(implies, nil); err != nil {
		t.Error(err)
	}
}
