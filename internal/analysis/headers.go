package analysis

import (
	"sort"

	"permodyssey/internal/origin"
	"permodyssey/internal/policy"
)

// AdoptionStats reproduces Figure 2 and the §4.3 adoption numbers.
// Local-scheme documents are excluded throughout (they carry no
// headers).
type AdoptionStats struct {
	Documents      int
	TopLevelDocs   int
	EmbeddedDocs   int
	PPDocuments    int // Permissions-Policy anywhere (7.90% in the paper)
	FPDocuments    int // Feature-Policy (0.51%)
	BothDocuments  int // overlap (2,302 websites in the paper)
	PPTopLevel     int // 4.5% of top-level
	PPEmbedded     int // 12.3% of embedded
	PPDocumentsPct float64
	FPDocumentsPct float64
	PPTopLevelPct  float64
	PPEmbeddedPct  float64
}

// Figure2Adoption computes header adoption over all non-local frames.
func (a *Analysis) Figure2Adoption() AdoptionStats {
	var s AdoptionStats
	for _, fr := range a.frames() {
		f := fr.frame
		if f.LocalScheme || f.LoadError != "" {
			continue
		}
		s.Documents++
		if f.TopLevel {
			s.TopLevelDocs++
		} else {
			s.EmbeddedDocs++
		}
		if f.HasPermissionsPolicy {
			s.PPDocuments++
			if f.TopLevel {
				s.PPTopLevel++
			} else {
				s.PPEmbedded++
			}
		}
		if f.HasFeaturePolicy {
			s.FPDocuments++
		}
		if f.HasPermissionsPolicy && f.HasFeaturePolicy {
			s.BothDocuments++
		}
	}
	s.PPDocumentsPct = pct(s.PPDocuments, s.Documents)
	s.FPDocumentsPct = pct(s.FPDocuments, s.Documents)
	s.PPTopLevelPct = pct(s.PPTopLevel, s.TopLevelDocs)
	s.PPEmbeddedPct = pct(s.PPEmbedded, s.EmbeddedDocs)
	return s
}

// DirectiveBreadthRow is one row of Table 9: for one permission, how
// many top-level websites declare each least-restrictive breadth.
type DirectiveBreadthRow struct {
	Name     string
	Counts   map[policy.Breadth]int
	Websites int
}

// HeaderContentStats carries the §4.3.1 aggregates.
type HeaderContentStats struct {
	HeaderWebsites int // top-level docs with the header (50,469)
	ParsedWebsites int // correctly parsed (47,681)
	AvgPermissions float64
	MaxPermissions int
	// SizeHistogram: directive-count → websites (the 18/1/9 template
	// signature of §4.3.1).
	SizeHistogram map[int]int
	// DisablePct etc. aggregate ALL directives, matching the Total row.
	DisablePct               float64
	SelfPct                  float64
	AllPct                   float64
	PowerfulDisableOrSelfPct float64
}

// Table9HeaderDirectives computes, for top-level documents with a valid
// Permissions-Policy header, the least restrictive directive per
// feature per website (paper Table 9), plus a Total row and content
// statistics.
func (a *Analysis) Table9HeaderDirectives(n int) ([]DirectiveBreadthRow, DirectiveBreadthRow, HeaderContentStats) {
	perName := map[string]*DirectiveBreadthRow{}
	total := &DirectiveBreadthRow{Name: "Total (any permission)", Counts: map[policy.Breadth]int{}}
	stats := HeaderContentStats{SizeHistogram: map[int]int{}}
	totalDirectives := 0
	powerfulDirectives, powerfulTight := 0, 0
	sumPerms := 0

	for _, rec := range a.recs {
		top := rec.Page.TopFrame()
		if !top.HasPermissionsPolicy {
			continue
		}
		stats.HeaderWebsites++
		if !top.HeaderValid {
			continue
		}
		p, _, err := policy.ParsePermissionsPolicy(top.PermissionsPolicyRaw)
		if err != nil {
			continue
		}
		stats.ParsedWebsites++
		stats.SizeHistogram[len(p.Directives)]++
		sumPerms += len(p.Directives)
		if len(p.Directives) > stats.MaxPermissions {
			stats.MaxPermissions = len(p.Directives)
		}
		self, _ := origin.Parse(top.Origin)
		for _, d := range p.Directives {
			breadth := d.Allowlist.BreadthFor(self)
			row, ok := perName[d.Feature]
			if !ok {
				row = &DirectiveBreadthRow{Name: d.Feature, Counts: map[policy.Breadth]int{}}
				perName[d.Feature] = row
			}
			row.Counts[breadth]++
			row.Websites++
			total.Counts[breadth]++
			totalDirectives++
			if isPowerful(d.Feature) {
				powerfulDirectives++
				if breadth <= policy.BreadthSelf {
					powerfulTight++
				}
			}
		}
		total.Websites++ // websites with ≥1 parsed directive
	}

	if stats.ParsedWebsites > 0 {
		stats.AvgPermissions = float64(sumPerms) / float64(stats.ParsedWebsites)
	}
	stats.DisablePct = pct(total.Counts[policy.BreadthDisable], totalDirectives)
	stats.SelfPct = pct(total.Counts[policy.BreadthSelf], totalDirectives)
	stats.AllPct = pct(total.Counts[policy.BreadthAll], totalDirectives)
	stats.PowerfulDisableOrSelfPct = pct(powerfulTight, powerfulDirectives)

	rows := make([]DirectiveBreadthRow, 0, len(perName))
	for _, row := range perName {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Websites != rows[j].Websites {
			return rows[i].Websites > rows[j].Websites
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows, *total, stats
}

func isPowerful(name string) bool {
	if p, ok := lookupPermission(name); ok {
		return p
	}
	return false
}

// EmbeddedHeaderStats reproduces §4.3.2: header content in embedded
// documents, where the most prevalent directives are User-Agent
// Client-Hints features granted '*' (which "effectively has no impact
// because the header can only enforce restrictions"), and the
// disable share drops to ~51% (vs 83.5% top-level).
type EmbeddedHeaderStats struct {
	// Documents is the number of embedded non-local frames with a valid
	// Permissions-Policy header.
	Documents int
	// TopFeatures ranks declared features by document count.
	TopFeatures []SiteCount
	// DisablePct / SelfPct / AllPct split all directives by breadth.
	DisablePct float64
	SelfPct    float64
	AllPct     float64
	// PowerfulDirectivePct is the share of directives naming powerful
	// permissions (56.29% top-level vs 26.30% embedded in the paper).
	PowerfulDirectivePct float64
}

// EmbeddedHeaders computes §4.3.2 over embedded documents.
func (a *Analysis) EmbeddedHeaders(topN int) EmbeddedHeaderStats {
	s := EmbeddedHeaderStats{}
	features := map[string]int{}
	var disable, self, all, total, powerful int
	for _, fr := range a.frames() {
		f := fr.frame
		if f.TopLevel || f.LocalScheme || !f.HasPermissionsPolicy || !f.HeaderValid {
			continue
		}
		p, _, err := policy.ParsePermissionsPolicy(f.PermissionsPolicyRaw)
		if err != nil {
			continue
		}
		s.Documents++
		selfOrigin, _ := origin.Parse(f.Origin)
		for _, d := range p.Directives {
			features[d.Feature]++
			total++
			if isPowerful(d.Feature) {
				powerful++
			}
			switch d.Allowlist.BreadthFor(selfOrigin) {
			case policy.BreadthDisable:
				disable++
			case policy.BreadthSelf:
				self++
			case policy.BreadthAll:
				all++
			}
		}
	}
	s.TopFeatures = topCounts(features, topN)
	s.DisablePct = pct(disable, total)
	s.SelfPct = pct(self, total)
	s.AllPct = pct(all, total)
	s.PowerfulDirectivePct = pct(powerful, total)
	return s
}

// MisconfigStats reproduces §4.3.3.
type MisconfigStats struct {
	// FramesWithHeader is the number of non-local frames declaring the
	// Permissions-Policy header (157,048 in the paper).
	FramesWithHeader int
	// SyntaxErrorFrames lost the whole header (3,244; 2%).
	SyntaxErrorFrames   int
	SyntaxErrorTopLevel int
	SyntaxErrorEmbedded int
	// ByKind counts linter findings per issue kind over all frames.
	ByKind map[policy.IssueKind]int
	// SemanticMisconfigWebsites: websites whose top-level header parses
	// but carries semantic defects (6,408 in the paper).
	SemanticMisconfigWebsites int
	// SemanticMisconfigEmbedded: websites that embed a document with a
	// misconfigured header (653).
	SemanticMisconfigEmbedded int
}

// Misconfigurations analyzes header defects across all frames.
func (a *Analysis) Misconfigurations() MisconfigStats {
	s := MisconfigStats{ByKind: map[policy.IssueKind]int{}}
	for _, rec := range a.recs {
		topSemantic, embSemantic := false, false
		for fi := range rec.Page.Frames {
			f := &rec.Page.Frames[fi]
			if f.LocalScheme || !f.HasPermissionsPolicy {
				continue
			}
			s.FramesWithHeader++
			for _, issue := range f.HeaderIssues {
				s.ByKind[issue.Kind]++
			}
			if !f.HeaderValid {
				s.SyntaxErrorFrames++
				if f.TopLevel {
					s.SyntaxErrorTopLevel++
				} else {
					s.SyntaxErrorEmbedded++
				}
				continue
			}
			semantic := false
			for _, issue := range f.HeaderIssues {
				switch issue.Kind {
				case policy.IssueUnrecognizedToken, policy.IssueUnquotedOrigin,
					policy.IssueContradictory, policy.IssueOriginsWithoutSelf,
					policy.IssueInvalidOrigin:
					semantic = true
				}
			}
			if semantic {
				if f.TopLevel {
					topSemantic = true
				} else {
					embSemantic = true
				}
			}
		}
		if topSemantic {
			s.SemanticMisconfigWebsites++
		}
		if embSemantic {
			s.SemanticMisconfigEmbedded++
		}
	}
	return s
}
