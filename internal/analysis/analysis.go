// Package analysis computes every result of the paper's evaluation from
// a crawl dataset: permission usage (Tables 4-6), embedding and
// delegation (Tables 3, 7, 8, §4.2.2), header adoption and content
// (Figure 2, Table 9, §4.3.3 misconfigurations), over-permissioned
// widgets (Tables 10/13), the crawl-failure taxonomy, and the summary
// rates of §4.1.4. All counting follows the paper's rules: first
// occurrence per permission per execution context, website-level
// aggregation over top-level sites, and local-scheme documents excluded
// from header statistics.
package analysis

import (
	"sort"

	"permodyssey/internal/browser"
	"permodyssey/internal/origin"
	"permodyssey/internal/store"
	"permodyssey/internal/webapi"
)

// Analysis wraps a dataset with the accessors the table builders share.
type Analysis struct {
	ds   *store.Dataset
	recs []store.SiteRecord // successful only
}

// New prepares an analysis over the dataset's successful records.
func New(ds *store.Dataset) *Analysis {
	return &Analysis{ds: ds, recs: ds.Successful()}
}

// Websites returns the number of successfully measured websites.
func (a *Analysis) Websites() int { return len(a.recs) }

// TotalRecords returns the number of attempted sites.
func (a *Analysis) TotalRecords() int { return len(a.ds.Records) }

// pct is a safe percentage.
func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// scriptParty classifies an invocation's script against its frame:
// first-party when the script site equals the frame's site, or when the
// script is inline / unattributable (the paper's rule, §4.1.1).
func scriptParty(scriptURL, frameSite string) (firstParty bool) {
	if scriptURL == "" {
		return true
	}
	s := origin.SiteOfURL(scriptURL)
	if s == "" {
		return true
	}
	return s == frameSite
}

// frameRef identifies one execution context in the dataset.
type frameRef struct {
	rec   *store.SiteRecord
	frame *browser.FrameResult
}

// frames iterates every frame of every successful record.
func (a *Analysis) frames() []frameRef {
	var out []frameRef
	for i := range a.recs {
		rec := &a.recs[i]
		for j := range rec.Page.Frames {
			out = append(out, frameRef{rec: rec, frame: &rec.Page.Frames[j]})
		}
	}
	return out
}

// SiteCount is a (site, websites) pair for ranking tables.
type SiteCount struct {
	Site  string
	Count int
}

// topCounts turns a map into a sorted ranking, ties broken by name.
func topCounts(m map[string]int, n int) []SiteCount {
	out := make([]SiteCount, 0, len(m))
	for k, v := range m {
		out = append(out, SiteCount{Site: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Site < out[j].Site
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// FrameStats reports the frame census of §4: totals, top-level vs
// embedded, local vs external embedded, and iframe prevalence.
type FrameStats struct {
	Websites          int
	TotalFrames       int
	TopLevelFrames    int
	EmbeddedFrames    int
	LocalEmbedded     int
	ExternalEmbedded  int
	WebsitesWithFrame int
	AvgIframesPerSite float64 // among sites that have iframes
}

// Frames computes the census.
func (a *Analysis) Frames() FrameStats {
	var fs FrameStats
	fs.Websites = len(a.recs)
	totalIframes := 0
	for _, rec := range a.recs {
		fs.TotalFrames += len(rec.Page.Frames)
		fs.TopLevelFrames++
		emb := rec.Page.EmbeddedFrames()
		if len(emb) > 0 {
			fs.WebsitesWithFrame++
			// Count directly inserted iframes (depth 1).
			direct := 0
			for _, f := range emb {
				if f.Depth == 1 {
					direct++
				}
			}
			totalIframes += direct
		}
		for _, f := range emb {
			fs.EmbeddedFrames++
			if f.LocalScheme {
				fs.LocalEmbedded++
			} else {
				fs.ExternalEmbedded++
			}
		}
	}
	if fs.WebsitesWithFrame > 0 {
		fs.AvgIframesPerSite = float64(totalIframes) / float64(fs.WebsitesWithFrame)
	}
	return fs
}

// FailureTaxonomy tallies the crawl outcome classes of §4.
func (a *Analysis) FailureTaxonomy() map[store.FailureClass]int {
	return a.ds.FailureCounts()
}

// Table3TopEmbeds ranks external embedded document sites by the number
// of websites including them at least once (paper Table 3).
func (a *Analysis) Table3TopEmbeds(n int) (rows []SiteCount, totalAnySite int) {
	counts := map[string]int{}
	any := 0
	for _, rec := range a.recs {
		topSite := rec.Page.TopFrame().Site
		seen := map[string]bool{}
		external := false
		for _, f := range rec.Page.EmbeddedFrames() {
			if f.LocalScheme || f.Site == "" || f.Site == topSite {
				continue
			}
			external = true
			if !seen[f.Site] {
				seen[f.Site] = true
				counts[f.Site]++
			}
		}
		if external {
			any++
		}
	}
	return topCounts(counts, n), any
}

// invocationName maps a record to its Table 4/5 row names: the specific
// permissions, or the General-Permission-APIs row.
func invocationNames(inv webapi.Invocation) []string {
	if inv.AllPermissions || isGeneralAPI(inv.API) {
		return []string{generalRow}
	}
	return inv.Permissions
}

const generalRow = "General Permission APIs"

func isGeneralAPI(api string) bool {
	switch api {
	case "navigator.permissions.query",
		"document.featurePolicy.allowedFeatures",
		"document.featurePolicy.allowsFeature",
		"document.featurePolicy.features",
		"document.featurePolicy.getAllowlistForFeature",
		"document.permissionsPolicy.allowedFeatures",
		"document.permissionsPolicy.allowsFeature",
		"document.permissionsPolicy.features",
		"document.permissionsPolicy.getAllowlistForFeature":
		return true
	}
	return false
}
