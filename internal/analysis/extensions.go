package analysis

import (
	"sort"

	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
	"permodyssey/internal/static"
)

// NestedDelegationStats extends the paper beyond its §4.2
// simplification ("we consider only directly inserted embedded
// documents"): it measures second-hop and deeper delegation, the chains
// §2.2.5 warns the top-level site cannot prevent.
type NestedDelegationStats struct {
	// DeepFrames are frames at depth ≥ 2.
	DeepFrames int
	// DeepDelegated of those carry an allow attribute with directives.
	DeepDelegated int
	// WebsitesWithChains have at least one ≥2-hop delegation chain where
	// the same permission flows through every hop.
	WebsitesWithChains int
	// PowerfulChains counts chains carrying a powerful permission.
	PowerfulChains int
	// ChainsByPermission counts chains per permission.
	ChainsByPermission map[string]int
}

// NestedDelegations computes the extension statistics.
func (a *Analysis) NestedDelegations() NestedDelegationStats {
	s := NestedDelegationStats{ChainsByPermission: map[string]int{}}
	for _, rec := range a.recs {
		// Delegations by depth-1 frames, for chain matching.
		depth1 := map[string]bool{} // permission delegated at hop 1
		for _, f := range rec.Page.EmbeddedFrames() {
			if f.Depth == 1 && f.Element.HasAllow {
				p, _ := policy.ParseAllowAttr(f.Element.Allow)
				for _, d := range p.Directives {
					if !d.Allowlist.None() {
						depth1[d.Feature] = true
					}
				}
			}
		}
		siteHasChain := false
		for _, f := range rec.Page.EmbeddedFrames() {
			if f.Depth < 2 {
				continue
			}
			s.DeepFrames++
			if !f.Element.HasAllow {
				continue
			}
			p, _ := policy.ParseAllowAttr(f.Element.Allow)
			if p.Empty() {
				continue
			}
			s.DeepDelegated++
			for _, d := range p.Directives {
				if d.Allowlist.None() || !depth1[d.Feature] {
					continue
				}
				s.ChainsByPermission[d.Feature]++
				siteHasChain = true
				if perm, ok := permissions.Lookup(d.Feature); ok && perm.Powerful {
					s.PowerfulChains++
				}
			}
		}
		if siteHasChain {
			s.WebsitesWithChains++
		}
	}
	return s
}

// PrevalenceTier is one row of the §4.2 prevalence observation ("34
// distinct sites are present in at least 100 of the most visited
// websites ... 13 sites in at least 1,000").
type PrevalenceTier struct {
	// MinWebsites is the inclusion threshold.
	MinWebsites int
	// Sites is the number of distinct embedded sites at or above it.
	Sites int
}

// DelegatedEmbedPrevalence computes how many distinct delegated-to
// embed sites exceed each website-count threshold.
func (a *Analysis) DelegatedEmbedPrevalence(thresholds []int) []PrevalenceTier {
	rows, _ := a.Table7DelegatedEmbeds(0)
	sort.Ints(thresholds)
	out := make([]PrevalenceTier, 0, len(thresholds))
	for _, th := range thresholds {
		n := 0
		for _, r := range rows {
			if r.Count >= th {
				n++
			}
		}
		out = append(out, PrevalenceTier{MinWebsites: th, Sites: n})
	}
	return out
}

// InternalPageGain quantifies the beyond-landing-page blind spot
// (§6.1): permissions observed on followed internal pages that the
// landing page never surfaced, statically or dynamically.
type InternalPageGain struct {
	// SitesWithInternalPages had at least one internal page visited.
	SitesWithInternalPages int
	// SitesWithNewPermissions gained ≥1 permission only visible there.
	SitesWithNewPermissions int
	// PermissionsGained counts (site, permission) pairs discovered only
	// on internal pages, by permission.
	PermissionsGained map[string]int
}

// InternalPages computes the gain from followed internal pages.
func (a *Analysis) InternalPages() InternalPageGain {
	g := InternalPageGain{PermissionsGained: map[string]int{}}
	for _, rec := range a.recs {
		if len(rec.InternalPages) == 0 {
			continue
		}
		g.SitesWithInternalPages++
		landing := map[string]bool{}
		for fi := range rec.Page.Frames {
			f := &rec.Page.Frames[fi]
			for _, inv := range f.Invocations {
				for _, p := range inv.Permissions {
					landing[p] = true
				}
			}
			for _, p := range static.Permissions(f.StaticFindings) {
				landing[p] = true
			}
		}
		gained := map[string]bool{}
		for pi := range rec.InternalPages {
			page := &rec.InternalPages[pi]
			for fi := range page.Frames {
				f := &page.Frames[fi]
				for _, inv := range f.Invocations {
					for _, p := range inv.Permissions {
						if !landing[p] {
							gained[p] = true
						}
					}
				}
				for _, p := range static.Permissions(f.StaticFindings) {
					if !landing[p] {
						gained[p] = true
					}
				}
			}
		}
		if len(gained) > 0 {
			g.SitesWithNewPermissions++
			for p := range gained {
				g.PermissionsGained[p]++
			}
		}
	}
	return g
}

// ReportOnlyStats measures Permissions-Policy-Report-Only adoption —
// the observe-before-enforce mode the specification inherits from CSP.
type ReportOnlyStats struct {
	Documents      int
	WithReportOnly int
	// AlsoEnforcing of those serve an enforced header too.
	AlsoEnforcing int
	// EndpointsSeen counts distinct report-to endpoint names.
	EndpointsSeen int
}

// ReportOnly computes report-only adoption over non-local frames.
func (a *Analysis) ReportOnly() ReportOnlyStats {
	s := ReportOnlyStats{}
	endpoints := map[string]bool{}
	for _, fr := range a.frames() {
		f := fr.frame
		if f.LocalScheme || f.LoadError != "" {
			continue
		}
		s.Documents++
		if !f.HasReportOnly {
			continue
		}
		s.WithReportOnly++
		if f.HasPermissionsPolicy {
			s.AlsoEnforcing++
		}
		if _, eps, _, err := policy.ParseReportOnly(f.ReportOnlyRaw); err == nil {
			for _, name := range eps {
				endpoints[name] = true
			}
		}
	}
	s.EndpointsSeen = len(endpoints)
	return s
}
