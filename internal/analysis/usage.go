package analysis

import (
	"sort"

	"permodyssey/internal/permissions"
	"permodyssey/internal/static"
	"permodyssey/internal/webapi"
)

// UsageRow is one row of Table 4: contexts invoking a permission, split
// top-level vs embedded, with first/third-party script percentages.
// When both parties invoke in the same context it counts once overall
// but contributes to both percentages (the paper's rule, which is why
// percentages can exceed 100%).
type UsageRow struct {
	Name          string
	TopContexts   int
	Top1PPct      float64
	Top3PPct      float64
	EmbContexts   int
	Emb1PPct      float64
	Emb3PPct      float64
	TotalContexts int
}

// UsageSummary carries the §4.1.1 headline shares.
type UsageSummary struct {
	Websites              int
	WithAnyInvocation     int // 40.65% in the paper
	WithTopLevelActivity  int // 39.41%
	WithEmbeddedActivity  int // 7.98%
	DeprecatedAPIWebsites int // 429,259 websites still on Feature Policy API
}

// t4cell accumulates Table 4 context counts for one row.
type t4cell struct {
	top, emb     int
	top1p, top3p int
	emb1p, emb3p int
}

func (c *t4cell) bump(topLevel, p1, p3 bool) {
	if topLevel {
		c.top++
		if p1 {
			c.top1p++
		}
		if p3 {
			c.top3p++
		}
	} else {
		c.emb++
		if p1 {
			c.emb1p++
		}
		if p3 {
			c.emb3p++
		}
	}
}

// Table4Invocations builds the dynamic-usage ranking (paper Table 4)
// plus the Total row and summary shares.
func (a *Analysis) Table4Invocations(n int) ([]UsageRow, UsageRow, UsageSummary) {
	perName := map[string]*t4cell{}
	total := &t4cell{}
	sum := UsageSummary{Websites: len(a.recs)}

	for _, rec := range a.recs {
		anyTop, anyEmb, usedDeprecated := false, false, false
		for fi := range rec.Page.Frames {
			f := &rec.Page.Frames[fi]
			if len(f.Invocations) == 0 {
				continue
			}
			// First occurrence per permission per context, with party
			// flags accumulated across the frame's invocations.
			names := map[string]*[2]bool{} // name → [1p, 2:3p]
			for _, inv := range f.Invocations {
				if inv.Deprecated {
					usedDeprecated = true
				}
				for _, name := range invocationNames(inv) {
					flags, ok := names[name]
					if !ok {
						flags = &[2]bool{}
						names[name] = flags
					}
					if scriptParty(inv.ScriptURL, f.Site) {
						flags[0] = true
					} else {
						flags[1] = true
					}
				}
			}
			if len(names) == 0 {
				continue
			}
			if f.TopLevel {
				anyTop = true
			} else {
				anyEmb = true
			}
			frame1p, frame3p := false, false
			for name, flags := range names {
				c, ok := perName[name]
				if !ok {
					c = &t4cell{}
					perName[name] = c
				}
				c.bump(f.TopLevel, flags[0], flags[1])
				frame1p = frame1p || flags[0]
				frame3p = frame3p || flags[1]
			}
			total.bump(f.TopLevel, frame1p, frame3p)
		}
		if anyTop || anyEmb {
			sum.WithAnyInvocation++
		}
		if anyTop {
			sum.WithTopLevelActivity++
		}
		if anyEmb {
			sum.WithEmbeddedActivity++
		}
		if usedDeprecated {
			sum.DeprecatedAPIWebsites++
		}
	}

	mkRow := func(name string, c *t4cell) UsageRow {
		return UsageRow{
			Name:          displayName(name),
			TopContexts:   c.top,
			Top1PPct:      pct(c.top1p, c.top),
			Top3PPct:      pct(c.top3p, c.top),
			EmbContexts:   c.emb,
			Emb1PPct:      pct(c.emb1p, c.emb),
			Emb3PPct:      pct(c.emb3p, c.emb),
			TotalContexts: c.top + c.emb,
		}
	}
	rows := make([]UsageRow, 0, len(perName))
	for name, c := range perName {
		rows = append(rows, mkRow(name, c))
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalContexts != rows[j].TotalContexts {
			return rows[i].TotalContexts > rows[j].TotalContexts
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	totalRow := mkRow("Total (any permission)", total)
	totalRow.Name = "Total (any permission)"
	return rows, totalRow, sum
}

func displayName(name string) string {
	if name == generalRow {
		return generalRow
	}
	if p, ok := permissions.Lookup(name); ok {
		return p.DisplayName
	}
	return name
}

// CheckRow is one row of Table 5: a permission whose status was checked.
type CheckRow struct {
	Name string
	// EmbeddedPct is the share of checking contexts that are embedded.
	EmbeddedPct float64
	// Websites is the number of top-level websites where the permission
	// was checked (at any level).
	Websites int
}

// CheckStats carries the §4.1.2 aggregates.
type CheckStats struct {
	Websites   int // any status-check activity (435,185 in the paper)
	AtTopLevel int // 433,555
	InEmbedded int // 187,555
	MeanPerTop float64
	MaxPerTop  int
}

// Table5StatusChecks builds the status-check ranking (paper Table 5):
// the synthetic "All Permissions" row counts full-list retrievals.
func (a *Analysis) Table5StatusChecks(n int) ([]CheckRow, CheckRow, CheckStats) {
	type cell struct {
		topCtx, embCtx int
		websites       map[int]bool
	}
	perName := map[string]*cell{}
	total := &cell{websites: map[int]bool{}}
	stats := CheckStats{}
	specificCounts := []int{}

	get := func(name string) *cell {
		c, ok := perName[name]
		if !ok {
			c = &cell{websites: map[int]bool{}}
			perName[name] = c
		}
		return c
	}

	for _, rec := range a.recs {
		siteKey := rec.Rank
		anyTop, anyEmb := false, false
		topSpecific := map[string]bool{}
		for fi := range rec.Page.Frames {
			f := &rec.Page.Frames[fi]
			seen := map[string]bool{}
			for _, inv := range f.Invocations {
				if inv.Kind != webapi.KindStatusCheck {
					continue
				}
				var names []string
				if inv.AllPermissions {
					names = []string{"All Permissions"}
				} else {
					names = inv.Permissions
				}
				for _, name := range names {
					if name != "All Permissions" && f.TopLevel {
						topSpecific[name] = true
					}
					if seen[name] {
						continue
					}
					seen[name] = true
					c := get(name)
					if f.TopLevel {
						c.topCtx++
					} else {
						c.embCtx++
					}
					c.websites[siteKey] = true
				}
				if len(names) > 0 {
					if f.TopLevel {
						anyTop = true
					} else {
						anyEmb = true
					}
				}
			}
			if len(seen) > 0 {
				if f.TopLevel {
					total.topCtx++
				} else {
					total.embCtx++
				}
				total.websites[siteKey] = true
			}
		}
		if anyTop || anyEmb {
			stats.Websites++
		}
		if anyTop {
			stats.AtTopLevel++
		}
		if anyEmb {
			stats.InEmbedded++
		}
		if len(topSpecific) > 0 {
			specificCounts = append(specificCounts, len(topSpecific))
		}
	}

	mkRow := func(name string, c *cell) CheckRow {
		return CheckRow{
			Name:        displayName(name),
			EmbeddedPct: pct(c.embCtx, c.topCtx+c.embCtx),
			Websites:    len(c.websites),
		}
	}
	rows := make([]CheckRow, 0, len(perName))
	for name, c := range perName {
		rows = append(rows, mkRow(name, c))
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Websites != rows[j].Websites {
			return rows[i].Websites > rows[j].Websites
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	sumN, maxN := 0, 0
	for _, k := range specificCounts {
		sumN += k
		if k > maxN {
			maxN = k
		}
	}
	if len(specificCounts) > 0 {
		stats.MeanPerTop = float64(sumN) / float64(len(specificCounts))
	}
	stats.MaxPerTop = maxN
	totalRow := mkRow("Total (any permission)", total)
	totalRow.Name = "Total (any permission)"
	return rows, totalRow, stats
}

// StaticRow is one row of Table 6.
type StaticRow struct {
	Name        string
	EmbeddedPct float64
	Websites    int
}

// StaticSummary carries §4.1.3's aggregates.
type StaticSummary struct {
	Websites      int // any static functionality (30.5% in the paper)
	TopLevelOnly  int
	EmbeddedAtAll int
}

// Table6Static builds the static-detection ranking (paper Table 6).
func (a *Analysis) Table6Static(n int) ([]StaticRow, StaticRow, StaticSummary) {
	type cell struct {
		topCtx, embCtx int
		websites       map[int]bool
	}
	perName := map[string]*cell{}
	total := &cell{websites: map[int]bool{}}
	sum := StaticSummary{}

	for _, rec := range a.recs {
		anyTop, anyEmb := false, false
		for fi := range rec.Page.Frames {
			f := &rec.Page.Frames[fi]
			perms := static.Permissions(f.StaticFindings)
			hasGeneral := static.HasGeneralAPI(f.StaticFindings)
			if len(perms) == 0 && !hasGeneral {
				continue
			}
			if f.TopLevel {
				anyTop = true
				total.topCtx++
			} else {
				anyEmb = true
				total.embCtx++
			}
			total.websites[rec.Rank] = true
			for _, p := range perms {
				c, ok := perName[p]
				if !ok {
					c = &cell{websites: map[int]bool{}}
					perName[p] = c
				}
				if f.TopLevel {
					c.topCtx++
				} else {
					c.embCtx++
				}
				c.websites[rec.Rank] = true
			}
		}
		if anyTop || anyEmb {
			sum.Websites++
		}
		if anyTop && !anyEmb {
			sum.TopLevelOnly++
		}
		if anyEmb {
			sum.EmbeddedAtAll++
		}
	}

	mkRow := func(name string, c *cell) StaticRow {
		return StaticRow{
			Name:        displayName(name),
			EmbeddedPct: pct(c.embCtx, c.topCtx+c.embCtx),
			Websites:    len(c.websites),
		}
	}
	rows := make([]StaticRow, 0, len(perName))
	for name, c := range perName {
		rows = append(rows, mkRow(name, c))
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Websites != rows[j].Websites {
			return rows[i].Websites > rows[j].Websites
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	totalRow := mkRow("Total (any permission)", total)
	totalRow.Name = "Total (any permission)"
	return rows, totalRow, sum
}

// HybridSummary is the §4.1.4 headline: websites with any
// permission-related functionality, dynamic or static (48.52% in the
// paper), with the per-method shares.
type HybridSummary struct {
	Websites    int
	AnyActivity int
	DynamicOnly int
	StaticOnly  int
	Both        int
}

// SummaryHybrid computes the §4.1.4 headline result.
func (a *Analysis) SummaryHybrid() HybridSummary {
	s := HybridSummary{Websites: len(a.recs)}
	for _, rec := range a.recs {
		dyn, stat := false, false
		for fi := range rec.Page.Frames {
			f := &rec.Page.Frames[fi]
			if len(f.Invocations) > 0 {
				dyn = true
			}
			if len(f.StaticFindings) > 0 {
				stat = true
			}
		}
		switch {
		case dyn && stat:
			s.AnyActivity++
			s.Both++
		case dyn:
			s.AnyActivity++
			s.DynamicOnly++
		case stat:
			s.AnyActivity++
			s.StaticOnly++
		}
	}
	return s
}
