package analysis

import (
	"fmt"
	"html"
	"strings"

	"permodyssey/internal/store"
)

func storeClass(s string) store.FailureClass { return store.FailureClass(s) }

// HTML renders the full report as a self-contained HTML page — the
// shareable artifact counterpart of the paper's results website.
func (a *Analysis) HTML(topN int) string {
	d := a.ReportData(topN)
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Permissions Odyssey — measurement report</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1a202c; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; border-bottom: 1px solid #e2e8f0; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .75rem 0; font-size: .9rem; }
th, td { border: 1px solid #e2e8f0; padding: .3rem .6rem; text-align: left; }
th { background: #f7fafc; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
p.meta { color: #4a5568; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>Permissions Odyssey — measurement report</h1>\n")
	fmt.Fprintf(&b, "<p class=\"meta\">%d of %d sites measured successfully.</p>\n",
		d.Websites, d.TotalRecords)

	writeTable := func(title string, headers []string, rows [][]string) {
		fmt.Fprintf(&b, "<h2>%s</h2>\n<table><tr>", html.EscapeString(title))
		for _, h := range headers {
			fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(h))
		}
		b.WriteString("</tr>\n")
		for _, row := range rows {
			b.WriteString("<tr>")
			for i, cell := range row {
				class := ""
				if i > 0 && looksNumeric(cell) {
					class = ` class="num"`
				}
				fmt.Fprintf(&b, "<td%s>%s</td>", class, html.EscapeString(cell))
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
	}

	// Failures.
	var failRows [][]string
	for _, class := range []string{"ok", "partial", "unreachable", "timeout", "ephemeral", "minor", "excluded", "breaker-open"} {
		if n, ok := d.Failures[storeClass(class)]; ok {
			failRows = append(failRows, []string{class, d2(n)})
		}
	}
	writeTable("Crawl outcome taxonomy (§4)", []string{"Outcome", "Sites"}, failRows)

	// Table 3.
	var t3 [][]string
	for _, r := range d.Table3 {
		t3 = append(t3, []string{r.Site, d2(r.Count)})
	}
	t3 = append(t3, []string{"Total (any site)", d2(d.Table3Total)})
	writeTable("Table 3 — Top external embedded document sites", []string{"Embedded site", "# Websites"}, t3)

	// Table 4.
	var t4 [][]string
	for _, r := range append(d.Table4, d.Table4Total) {
		t4 = append(t4, []string{
			r.Name,
			fmt.Sprintf("%d (%.1f%% / %.1f%%)", r.TopContexts, r.Top1PPct, r.Top3PPct),
			fmt.Sprintf("%d (%.1f%% / %.1f%%)", r.EmbContexts, r.Emb1PPct, r.Emb3PPct),
			d2(r.TotalContexts),
		})
	}
	writeTable("Table 4 — Permissions used (dynamic)", []string{"Permission", "Top-level (1P/3P)", "Embedded (1P/3P)", "Contexts"}, t4)

	// Table 5.
	var t5 [][]string
	for _, r := range append(d.Table5, d.Table5Total) {
		t5 = append(t5, []string{r.Name, fmt.Sprintf("%.1f%%", r.EmbeddedPct), d2(r.Websites)})
	}
	writeTable("Table 5 — Permission status checks", []string{"Permission", "% from embedded", "# Websites"}, t5)

	// Table 6.
	var t6 [][]string
	for _, r := range append(d.Table6, d.Table6Total) {
		t6 = append(t6, []string{r.Name, fmt.Sprintf("%.1f%%", r.EmbeddedPct), d2(r.Websites)})
	}
	writeTable("Table 6 — Statically detected permissions", []string{"Permission", "% in embedded", "# Websites"}, t6)

	// Tables 7/8.
	var t7 [][]string
	for _, r := range d.Table7 {
		t7 = append(t7, []string{r.Site, d2(r.Count)})
	}
	t7 = append(t7, []string{"Total (any site)", d2(d.Table7Total)})
	writeTable("Table 7 — Embeds with delegated permissions", []string{"Embedded site", "# Websites"}, t7)
	var t8 [][]string
	for _, r := range append(d.Table8, d.Table8Total) {
		t8 = append(t8, []string{r.Name, d2(r.Delegations), d2(r.Websites)})
	}
	writeTable("Table 8 — Delegated permissions", []string{"Permission", "Delegations", "# Websites"}, t8)

	// Figure 2.
	writeTable("Figure 2 — Header adoption", []string{"Metric", "Value"}, [][]string{
		{"Documents analyzed (non-local)", d2(d.Adoption.Documents)},
		{"Permissions-Policy documents", fmt.Sprintf("%d (%.2f%%)", d.Adoption.PPDocuments, d.Adoption.PPDocumentsPct)},
		{"Feature-Policy documents", fmt.Sprintf("%d (%.2f%%)", d.Adoption.FPDocuments, d.Adoption.FPDocumentsPct)},
		{"Permissions-Policy top-level", fmt.Sprintf("%d (%.2f%%)", d.Adoption.PPTopLevel, d.Adoption.PPTopLevelPct)},
		{"Permissions-Policy embedded", fmt.Sprintf("%d (%.2f%%)", d.Adoption.PPEmbedded, d.Adoption.PPEmbeddedPct)},
	})

	// Table 9.
	var t9 [][]string
	for _, r := range append(d.Table9, d.Table9Total) {
		row := []string{r.Name}
		for _, breadth := range breadthOrder {
			row = append(row, d2(r.Counts[breadth]))
		}
		row = append(row, d2(r.Websites))
		t9 = append(t9, row)
	}
	t9headers := []string{"Permission"}
	for _, breadth := range breadthOrder {
		t9headers = append(t9headers, breadth.String())
	}
	t9headers = append(t9headers, "# Websites")
	writeTable("Table 9 — Header directive breadth (top-level)", t9headers, t9)

	// Table 10.
	var t10 [][]string
	for _, r := range d.Table10 {
		t10 = append(t10, []string{r.Site, strings.Join(r.UnusedPermissions, ", "), d2(r.AffectedWebsites)})
	}
	t10 = append(t10, []string{"Total (any iframe)", "", d2(d.Table10Total)})
	writeTable("Tables 10/13 — Potentially unused delegations", []string{"Embedded iframe", "Unused permissions", "# Affected websites"}, t10)

	// Purposes & extensions.
	var pr [][]string
	for _, r := range d.Purposes {
		pr = append(pr, []string{string(r.Purpose), d2(r.Embeds), d2(r.Websites)})
	}
	writeTable("Delegation purposes (§4.2.1)", []string{"Purpose", "Embed sites", "# Websites"}, pr)

	writeTable("Extensions", []string{"Metric", "Value"}, [][]string{
		{"Deep (≥2) frames / delegated", fmt.Sprintf("%d / %d", d.Nested.DeepFrames, d.Nested.DeepDelegated)},
		{"Websites with ≥2-hop delegation chains", d2(d.Nested.WebsitesWithChains)},
		{"Report-only documents", d2(d.ReportOnlyH.WithReportOnly)},
		{"Local-scheme bypass exposure (self-only powerful / exposed)",
			fmt.Sprintf("%d / %d", d.Exposure.SelfOnlyPowerful, d.Exposure.Exposed)},
	})

	b.WriteString("</body></html>\n")
	return b.String()
}

func d2(n int) string { return fmt.Sprintf("%d", n) }

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c >= '0' && c <= '9'
}
