package analysis

import (
	"testing"
)

func TestClassifyPurpose(t *testing.T) {
	tests := []struct {
		perms []string
		want  Purpose
	}{
		// The paper's own grouping bullets (§4.2.1).
		{[]string{"attribution-reporting", "join-ad-interest-group", "run-ad-auction"}, PurposeAds},
		{[]string{"autoplay", "clipboard-write", "fullscreen", "encrypted-media", "picture-in-picture", "accelerometer"}, PurposeMedia},
		{[]string{"camera", "microphone", "display-capture"}, PurposeSupport},
		{[]string{"payment"}, PurposePayment},
		{[]string{"identity-credentials-get", "otp-credentials"}, PurposeSession},
		{[]string{"cross-origin-isolated", "private-state-token-issuance"}, PurposeOther},
		// The LiveChat template: support + media markers → support wins
		// over the tag-along media permissions? No: two specific groups
		// (support + media) with media demoted → support.
		{[]string{"clipboard-read", "clipboard-write", "autoplay", "microphone", "camera", "display-capture", "picture-in-picture", "fullscreen"}, PurposeSupport},
		// WixApps: media + support + geolocation + vr → Mixed (§4.2.1's
		// multi-purpose template observation).
		{[]string{"autoplay", "camera", "microphone", "geolocation", "vr", "payment"}, PurposeMixed},
		{[]string{"gamepad"}, PurposeUngrouped},
		{nil, PurposeUngrouped},
	}
	for _, tt := range tests {
		if got := ClassifyPurpose(tt.perms); got != tt.want {
			t.Errorf("ClassifyPurpose(%v) = %q; want %q", tt.perms, got, tt.want)
		}
	}
}

func TestDelegationsByPurpose(t *testing.T) {
	a := New(dataset(t))
	rows := a.DelegationsByPurpose()
	if len(rows) < 3 {
		t.Fatalf("purpose rows: %+v", rows)
	}
	byPurpose := map[Purpose]PurposeRow{}
	for _, r := range rows {
		byPurpose[r.Purpose] = r
		t.Logf("%-28s embeds=%d websites=%d", r.Purpose, r.Embeds, r.Websites)
	}
	for _, p := range []Purpose{PurposeAds, PurposeMedia, PurposeSupport, PurposePayment} {
		if byPurpose[p].Websites == 0 {
			t.Errorf("purpose %q absent", p)
		}
	}
	// Media and ads dominate, as in Tables 7/8.
	if byPurpose[PurposeMedia].Websites < byPurpose[PurposePayment].Websites {
		t.Error("media delegation should exceed payment delegation")
	}
}

func TestSpecIssueExposure(t *testing.T) {
	a := New(dataset(t))
	s := a.SpecIssueExposure()
	t.Logf("exposure: %+v", s)
	if s.SelfOnlyPowerful == 0 {
		t.Fatal("self-only powerful directives exist in the population (geolocation=(self) templates)")
	}
	if s.Exposed == 0 {
		t.Error("some exposed sites lack frame-governing CSP")
	}
	if s.Exposed > s.SelfOnlyPowerful {
		t.Error("exposed ⊆ self-only-powerful")
	}
}
