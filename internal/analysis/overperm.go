package analysis

import (
	"sort"
	"strings"

	"permodyssey/internal/permissions"
	"permodyssey/internal/policy"
	"permodyssey/internal/static"
)

func lookupPermission(name string) (powerful bool, ok bool) {
	p, ok := permissions.Lookup(name)
	return p.Powerful, ok
}

// OverPermissionRow is one row of Tables 10/13: an embedded document
// site holding delegated permissions it never uses.
type OverPermissionRow struct {
	Site string
	// UnusedPermissions are delegated in ≥ Threshold of the site's
	// delegated inclusions yet never exercised anywhere in the dataset.
	UnusedPermissions []string
	// AffectedWebsites delegate at least one unused permission to it.
	AffectedWebsites int
}

// OverPermissionConfig tunes the §5 detection.
type OverPermissionConfig struct {
	// Threshold is the minimum share of a widget's iframes that must
	// carry the delegation for it to count as systematic (5% in the
	// paper, chosen "to capture the most prevalent delegated permissions
	// while minimizing noise").
	Threshold float64
	// MinInclusions avoids judging widgets seen once or twice.
	MinInclusions int
}

// DefaultOverPermissionConfig mirrors the paper.
func DefaultOverPermissionConfig() OverPermissionConfig {
	return OverPermissionConfig{Threshold: 0.05, MinInclusions: 3}
}

// OverPermissioned computes Tables 10/13: the upper bound of
// potentially over-permissive embedded documents. For each embedded
// site it gathers (a) the permissions delegated in at least
// Threshold of its iframes and (b) every permission for which the
// embedded site showed any activity — invocation, status check or
// static functionality — anywhere in the dataset. Permissions in (a)
// but not (b) are potentially unused delegations.
func (a *Analysis) OverPermissioned(cfg OverPermissionConfig, n int) ([]OverPermissionRow, int) {
	type widgetStats struct {
		inclusions     int
		delegatedCount map[string]int
		usedPerms      map[string]bool
		// websitesByPerm: websites delegating each permission to it.
		websitesByPerm map[string]map[int]bool
	}
	widgets := map[string]*widgetStats{}
	get := func(site string) *widgetStats {
		w, ok := widgets[site]
		if !ok {
			w = &widgetStats{
				delegatedCount: map[string]int{},
				usedPerms:      map[string]bool{},
				websitesByPerm: map[string]map[int]bool{},
			}
			widgets[site] = w
		}
		return w
	}

	for _, rec := range a.recs {
		topSite := rec.Page.TopFrame().Site
		for fi := range rec.Page.EmbeddedFrames() {
			f := rec.Page.EmbeddedFrames()[fi]
			if f.LocalScheme || f.Site == "" || f.Site == topSite {
				continue
			}
			w := get(f.Site)
			w.inclusions++
			if f.Element.HasAllow {
				p, _ := policy.ParseAllowAttr(f.Element.Allow)
				for _, d := range p.Directives {
					if d.Allowlist.None() {
						continue // opt-outs are not delegations
					}
					w.delegatedCount[d.Feature]++
					if w.websitesByPerm[d.Feature] == nil {
						w.websitesByPerm[d.Feature] = map[int]bool{}
					}
					w.websitesByPerm[d.Feature][rec.Rank] = true
				}
			}
			// Usage evidence: any permission-related activity by the
			// embedded document.
			for _, inv := range f.Invocations {
				for _, perm := range inv.Permissions {
					w.usedPerms[perm] = true
				}
			}
			for _, perm := range static.Permissions(f.StaticFindings) {
				w.usedPerms[perm] = true
			}
		}
	}

	var rows []OverPermissionRow
	affectedTotal := map[int]bool{}
	for site, w := range widgets {
		if w.inclusions < cfg.MinInclusions {
			continue
		}
		var unused []string
		affected := map[int]bool{}
		for perm, count := range w.delegatedCount {
			if float64(count) < cfg.Threshold*float64(w.inclusions) {
				continue
			}
			if w.usedPerms[perm] {
				continue
			}
			// Only real, policy-controlled permissions are risk-relevant.
			if p, ok := permissions.Lookup(perm); !ok || !p.PolicyControlled() {
				continue
			}
			unused = append(unused, perm)
			for rank := range w.websitesByPerm[perm] {
				affected[rank] = true
				affectedTotal[rank] = true
			}
		}
		if len(unused) == 0 {
			continue
		}
		sort.Strings(unused)
		rows = append(rows, OverPermissionRow{
			Site:              site,
			UnusedPermissions: unused,
			AffectedWebsites:  len(affected),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].AffectedWebsites != rows[j].AffectedWebsites {
			return rows[i].AffectedWebsites > rows[j].AffectedWebsites
		}
		return rows[i].Site < rows[j].Site
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows, len(affectedTotal)
}

// PowerfulUnused filters an over-permission report to rows delegating
// unused POWERFUL permissions — the §5 risk focus (customer-support
// widgets with camera/microphone).
func PowerfulUnused(rows []OverPermissionRow) []OverPermissionRow {
	var out []OverPermissionRow
	for _, r := range rows {
		var powerful []string
		for _, perm := range r.UnusedPermissions {
			if p, ok := permissions.Lookup(perm); ok && p.Powerful {
				powerful = append(powerful, perm)
			}
		}
		if len(powerful) > 0 {
			out = append(out, OverPermissionRow{
				Site: r.Site, UnusedPermissions: powerful, AffectedWebsites: r.AffectedWebsites,
			})
		}
	}
	return out
}

// WildcardDelegationRisks finds widgets included with wildcard (*)
// delegations of powerful permissions — the LiveChat hijacking pattern
// of §5.2: a redirect of the embedded document would carry the
// permission along.
type WildcardRisk struct {
	Site        string
	Permissions []string
	Websites    int
}

// WildcardRisks scans for the §5.2 wildcard pattern.
func (a *Analysis) WildcardRisks() []WildcardRisk {
	type cell struct {
		perms    map[string]bool
		websites map[int]bool
	}
	m := map[string]*cell{}
	for _, rec := range a.recs {
		topSite := rec.Page.TopFrame().Site
		for _, f := range rec.Page.EmbeddedFrames() {
			if f.LocalScheme || f.Site == "" || f.Site == topSite || !f.Element.HasAllow {
				continue
			}
			for _, raw := range strings.Split(f.Element.Allow, ";") {
				feature, kind, ok := policy.ClassifyAllowDirective(raw)
				if !ok || kind != policy.DelegationWildcard {
					continue
				}
				p, known := permissions.Lookup(feature)
				if !known || !p.Powerful {
					continue
				}
				c, ok := m[f.Site]
				if !ok {
					c = &cell{perms: map[string]bool{}, websites: map[int]bool{}}
					m[f.Site] = c
				}
				c.perms[feature] = true
				c.websites[rec.Rank] = true
			}
		}
	}
	var out []WildcardRisk
	for site, c := range m {
		var perms []string
		for p := range c.perms {
			perms = append(perms, p)
		}
		sort.Strings(perms)
		out = append(out, WildcardRisk{Site: site, Permissions: perms, Websites: len(c.websites)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Websites != out[j].Websites {
			return out[i].Websites > out[j].Websites
		}
		return out[i].Site < out[j].Site
	})
	return out
}
