package analysis

import (
	"fmt"
	"sort"
	"strings"

	"permodyssey/internal/policy"
	"permodyssey/internal/store"
)

// Table is a renderable text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f%%", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f%%", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }

// RenderTable3 renders the top external embeds.
func RenderTable3(rows []SiteCount, total int) Table {
	t := Table{
		Title:   "Table 3: Top External Embedded Documents Site",
		Headers: []string{"Embedded Document Site", "# Websites including"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Site, d(r.Count)})
	}
	t.Rows = append(t.Rows, []string{"Total (any site)", d(total)})
	return t
}

// RenderTable4 renders the dynamic invocation ranking.
func RenderTable4(rows []UsageRow, total UsageRow) Table {
	t := Table{
		Title:   "Table 4: Top Permissions Used Across Top-Level and Embedded Contexts",
		Headers: []string{"Permission", "Top-Level (1P/3P)", "Embedded (1P/3P)", "Total Contexts"},
	}
	mk := func(r UsageRow) []string {
		return []string{
			r.Name,
			fmt.Sprintf("%d (%s/%s)", r.TopContexts, f2(r.Top1PPct), f2(r.Top3PPct)),
			fmt.Sprintf("%d (%s/%s)", r.EmbContexts, f2(r.Emb1PPct), f2(r.Emb3PPct)),
			d(r.TotalContexts),
		}
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, mk(r))
	}
	t.Rows = append(t.Rows, mk(total))
	return t
}

// RenderTable5 renders the status-check ranking.
func RenderTable5(rows []CheckRow, total CheckRow) Table {
	t := Table{
		Title:   "Table 5: Top Permission's Status Checked",
		Headers: []string{"Permission", "% Checked From Embedded", "# Top-Level Websites"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, f2(r.EmbeddedPct), d(r.Websites)})
	}
	t.Rows = append(t.Rows, []string{total.Name, f2(total.EmbeddedPct), d(total.Websites)})
	return t
}

// RenderTable6 renders the static-detection ranking.
func RenderTable6(rows []StaticRow, total StaticRow) Table {
	t := Table{
		Title:   "Table 6: Top Statically Detected Permissions",
		Headers: []string{"Permission", "% Functionality in Embedded", "# Top-Level Websites"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, f2(r.EmbeddedPct), d(r.Websites)})
	}
	t.Rows = append(t.Rows, []string{total.Name, f2(total.EmbeddedPct), d(total.Websites)})
	return t
}

// RenderTable7 renders the delegated-embed ranking.
func RenderTable7(rows []SiteCount, total int) Table {
	t := Table{
		Title:   "Table 7: Top External Embedded Documents with Delegated Permissions",
		Headers: []string{"Embedded Document Site", "# Top-Level Websites"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Site, d(r.Count)})
	}
	t.Rows = append(t.Rows, []string{"Total (any site)", d(total)})
	return t
}

// RenderTable8 renders the delegated-permission ranking.
func RenderTable8(rows []DelegatedPermissionRow, total DelegatedPermissionRow) Table {
	t := Table{
		Title:   "Table 8: Top Delegated Permissions to External Embedded Documents",
		Headers: []string{"Permission", "Delegations", "# Top-Level Websites"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, d(r.Delegations), d(r.Websites)})
	}
	t.Rows = append(t.Rows, []string{total.Name, d(total.Delegations), d(total.Websites)})
	return t
}

var breadthOrder = []policy.Breadth{
	policy.BreadthDisable, policy.BreadthSelf, policy.BreadthSameOrigin,
	policy.BreadthSameSite, policy.BreadthThirdParty, policy.BreadthAll,
}

// RenderTable9 renders header-directive breadths.
func RenderTable9(rows []DirectiveBreadthRow, total DirectiveBreadthRow) Table {
	headers := []string{"Permission"}
	for _, b := range breadthOrder {
		headers = append(headers, b.String())
	}
	headers = append(headers, "# Websites")
	t := Table{Title: "Table 9: Permissions-Policy header least restrictive directives (top-level)", Headers: headers}
	mk := func(r DirectiveBreadthRow) []string {
		row := []string{r.Name}
		for _, b := range breadthOrder {
			c := r.Counts[b]
			row = append(row, fmt.Sprintf("%d (%s)", c, f2(pct(c, r.Websites))))
		}
		return append(row, d(r.Websites))
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, mk(r))
	}
	sumDirectives := 0
	for _, b := range breadthOrder {
		sumDirectives += total.Counts[b]
	}
	row := []string{total.Name}
	for _, b := range breadthOrder {
		c := total.Counts[b]
		row = append(row, fmt.Sprintf("%d (%s)", c, f2(pct(c, sumDirectives))))
	}
	row = append(row, d(total.Websites))
	t.Rows = append(t.Rows, row)
	return t
}

// RenderFigure2 renders adoption shares as a text "figure".
func RenderFigure2(s AdoptionStats) Table {
	return Table{
		Title:   "Figure 2: Permission Control headers adoption",
		Headers: []string{"Metric", "Value"},
		Rows: [][]string{
			{"Documents analyzed (non-local)", d(s.Documents)},
			{"Permissions-Policy documents", fmt.Sprintf("%d (%s)", s.PPDocuments, f2(s.PPDocumentsPct))},
			{"Feature-Policy documents", fmt.Sprintf("%d (%s)", s.FPDocuments, f2(s.FPDocumentsPct))},
			{"Both headers", d(s.BothDocuments)},
			{"Permissions-Policy top-level", fmt.Sprintf("%d (%s of top-level)", s.PPTopLevel, f2(s.PPTopLevelPct))},
			{"Permissions-Policy embedded", fmt.Sprintf("%d (%s of embedded)", s.PPEmbedded, f2(s.PPEmbeddedPct))},
		},
	}
}

// RenderTable10 renders the over-permission ranking.
func RenderTable10(rows []OverPermissionRow, total int) Table {
	t := Table{
		Title:   "Table 10/13: Embedded Documents with Potentially Unused Delegated Permissions",
		Headers: []string{"Embedded Iframe", "Potentially Unused Permissions", "# Affected Websites"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Site, strings.Join(r.UnusedPermissions, ", "), d(r.AffectedWebsites)})
	}
	t.Rows = append(t.Rows, []string{"Total (any iframe)", "", d(total)})
	return t
}

// RenderFailures renders the crawl-failure taxonomy.
func RenderFailures(counts map[store.FailureClass]int) Table {
	t := Table{
		Title:   "Crawl outcome taxonomy (§4)",
		Headers: []string{"Outcome", "Sites"},
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Rows = append(t.Rows, []string{k, d(counts[store.FailureClass(k)])})
	}
	return t
}

// RenderDirectiveShares renders §4.2.2's delegation-directive split.
func RenderDirectiveShares(s DirectiveShares) Table {
	return Table{
		Title:   "Delegation directives (§4.2.2)",
		Headers: []string{"Directive form", "Share"},
		Rows: [][]string{
			{"default (src)", f2(s.DefaultSrc)},
			{"* wildcard", f2(s.Wildcard)},
			{"explicit 'src'", f2(s.ExplicitSrc)},
			{"'none'", fmt.Sprintf("%s (%d instances)", f2(s.None), s.NoneCount)},
			{"single origin", f2(s.SingleOrig)},
			{"'self'", f2(s.Self)},
			{"total directives", d(s.Total)},
		},
	}
}

// FullReport renders every table of the evaluation in paper order.
func (a *Analysis) FullReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Permissions Odyssey — measurement report over %d/%d sites ===\n\n",
		a.Websites(), a.TotalRecords())

	b.WriteString(RenderFailures(a.FailureTaxonomy()).String())
	b.WriteByte('\n')

	if rt := a.RetryOutcomes(); rt.RetriedSites > 0 {
		b.WriteString(RenderRetryTable(rt).String())
		b.WriteByte('\n')
	}

	fs := a.Frames()
	fmt.Fprintf(&b, "Frames: %d total (%d top-level, %d embedded: %.1f%% local / %.1f%% external)\n",
		fs.TotalFrames, fs.TopLevelFrames, fs.EmbeddedFrames,
		pct(fs.LocalEmbedded, fs.EmbeddedFrames), pct(fs.ExternalEmbedded, fs.EmbeddedFrames))
	fmt.Fprintf(&b, "Websites with iframes: %d (avg %.1f direct iframes)\n\n",
		fs.WebsitesWithFrame, fs.AvgIframesPerSite)

	t3, t3Total := a.Table3TopEmbeds(10)
	b.WriteString(RenderTable3(t3, t3Total).String())
	b.WriteByte('\n')

	t4, t4Total, usum := a.Table4Invocations(10)
	b.WriteString(RenderTable4(t4, t4Total).String())
	fmt.Fprintf(&b, "Websites with any invocation: %d (%s); top-level %s; embedded %s; deprecated Feature-Policy API reliance: %d websites\n\n",
		usum.WithAnyInvocation, f2(pct(usum.WithAnyInvocation, usum.Websites)),
		f2(pct(usum.WithTopLevelActivity, usum.Websites)),
		f2(pct(usum.WithEmbeddedActivity, usum.Websites)),
		usum.DeprecatedAPIWebsites)

	t5, t5Total, cstats := a.Table5StatusChecks(10)
	b.WriteString(RenderTable5(t5, t5Total).String())
	fmt.Fprintf(&b, "Status-check websites: %d (top %d / embedded %d); mean %.2f specific permissions checked (max %d)\n\n",
		cstats.Websites, cstats.AtTopLevel, cstats.InEmbedded, cstats.MeanPerTop, cstats.MaxPerTop)

	t6, t6Total, ssum := a.Table6Static(10)
	b.WriteString(RenderTable6(t6, t6Total).String())
	fmt.Fprintf(&b, "Static functionality on %d websites (%s)\n\n",
		ssum.Websites, f2(pct(ssum.Websites, a.Websites())))

	hy := a.SummaryHybrid()
	fmt.Fprintf(&b, "Hybrid headline (§4.1.4): %d/%d websites (%s) show any permission-related functionality\n\n",
		hy.AnyActivity, hy.Websites, f2(pct(hy.AnyActivity, hy.Websites)))

	ds := a.SummaryDelegation()
	fmt.Fprintf(&b, "Delegation (§4.2): any %s; external %s; third-party %d websites\n\n",
		f2(pct(ds.AnyDelegation, ds.Websites)), f2(pct(ds.ExternalDelegation, ds.Websites)),
		ds.ThirdPartyDelegation)

	t7, t7Total := a.Table7DelegatedEmbeds(10)
	b.WriteString(RenderTable7(t7, t7Total).String())
	b.WriteByte('\n')

	t8, t8Total := a.Table8DelegatedPermissions(10)
	b.WriteString(RenderTable8(t8, t8Total).String())
	b.WriteByte('\n')

	b.WriteString(RenderDirectiveShares(a.DelegationDirectives()).String())
	b.WriteByte('\n')

	b.WriteString(RenderFigure2(a.Figure2Adoption()).String())
	b.WriteByte('\n')

	t9, t9Total, hstats := a.Table9HeaderDirectives(10)
	b.WriteString(RenderTable9(t9, t9Total).String())
	fmt.Fprintf(&b, "Header content: %d websites declare it, %d parse; avg %.2f permissions (max %d); disable %s / self %s / * %s; powerful tight %s\n\n",
		hstats.HeaderWebsites, hstats.ParsedWebsites, hstats.AvgPermissions, hstats.MaxPermissions,
		f2(hstats.DisablePct), f2(hstats.SelfPct), f2(hstats.AllPct), f2(hstats.PowerfulDisableOrSelfPct))

	emb := a.EmbeddedHeaders(5)
	fmt.Fprintf(&b, "Embedded-document headers (§4.3.2): %d docs; directives disable %s / self %s / * %s; powerful %s; top features:",
		emb.Documents, f2(emb.DisablePct), f2(emb.SelfPct), f2(emb.AllPct), f2(emb.PowerfulDirectivePct))
	for _, fcount := range emb.TopFeatures {
		fmt.Fprintf(&b, " %s(%d)", fcount.Site, fcount.Count)
	}
	b.WriteString("\n\n")

	mis := a.Misconfigurations()
	fmt.Fprintf(&b, "Misconfigurations (§4.3.3): %d frames with header; %d syntax-invalid (top %d / embedded %d); semantic: %d websites top-level, %d embedded\n\n",
		mis.FramesWithHeader, mis.SyntaxErrorFrames, mis.SyntaxErrorTopLevel, mis.SyntaxErrorEmbedded,
		mis.SemanticMisconfigWebsites, mis.SemanticMisconfigEmbedded)

	t10, t10Total := a.OverPermissioned(DefaultOverPermissionConfig(), 10)
	b.WriteString(RenderTable10(t10, t10Total).String())
	b.WriteByte('\n')

	nested := a.NestedDelegations()
	fmt.Fprintf(&b, "Nested delegation (extension beyond §4.2's depth-1 scope): %d deep frames, %d delegated; %d websites carry ≥2-hop chains (%d hops of powerful permissions)\n",
		nested.DeepFrames, nested.DeepDelegated, nested.WebsitesWithChains, nested.PowerfulChains)

	tiers := a.DelegatedEmbedPrevalence([]int{1, 10, 50, 100})
	b.WriteString("Delegated-embed prevalence (§4.2): ")
	for i, tier := range tiers {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d sites in ≥%d websites", tier.Sites, tier.MinWebsites)
	}
	b.WriteByte('\n')

	ro := a.ReportOnly()
	fmt.Fprintf(&b, "Report-only mode: %d documents serve Permissions-Policy-Report-Only (%d also enforce; %d distinct endpoints)\n\n",
		ro.WithReportOnly, ro.AlsoEnforcing, ro.EndpointsSeen)

	b.WriteString("Delegation purposes (§4.2.1 grouping)\n")
	for _, row := range a.DelegationsByPurpose() {
		fmt.Fprintf(&b, "  %-28s %3d embed sites on %4d websites\n", row.Purpose, row.Embeds, row.Websites)
	}
	exp := a.SpecIssueExposure()
	fmt.Fprintf(&b, "\nLocal-scheme bypass exposure (§6.2): %d websites restrict a powerful permission to self; %d of them would let an injected data: iframe load (no frame-governing CSP)\n",
		exp.SelfOnlyPowerful, exp.Exposed)
	return b.String()
}
