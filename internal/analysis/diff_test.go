package analysis

import (
	"math"
	"strings"
	"testing"

	"permodyssey/internal/store"
)

// TestDriftReport: diffing an empty snapshot against a populated one
// surfaces every permission as new, reversing the diff marks them
// gone, and the rendered report is deterministic.
func TestDriftReport(t *testing.T) {
	empty := New(&store.Dataset{}).ReportData(0)
	full := New(handDataset()).ReportData(0)

	d := Diff(empty, full, "2020", "2024")
	if d.LabelA != "2020" || d.LabelB != "2024" {
		t.Fatalf("labels = %q, %q", d.LabelA, d.LabelB)
	}
	if len(d.Usage) == 0 {
		t.Fatal("no usage drift rows for a populated after-snapshot")
	}
	for _, row := range d.Usage {
		if row.Status != "new" {
			t.Errorf("usage row %+v: want status new (before was empty)", row)
		}
		if row.Delta != row.After-row.Before {
			t.Errorf("usage row %+v: delta mismatch", row)
		}
	}
	if got := d.Population[0]; got.Before != 0 || got.After != full.Websites || got.Delta != full.Websites {
		t.Errorf("websites drift = %+v, want 0 → %d", got, full.Websites)
	}

	back := Diff(full, empty, "2024", "2020")
	for _, row := range back.Usage {
		if row.Status != "gone" {
			t.Errorf("reversed usage row %+v: want status gone", row)
		}
	}

	// Deterministic render: same inputs, same bytes.
	if a, b := Diff(empty, full, "a", "b").String(), Diff(empty, full, "a", "b").String(); a != b {
		t.Error("drift report render is not deterministic")
	}
	out := d.String()
	for _, want := range []string{
		"Longitudinal drift report: 2020 → 2024",
		"Figure 2 drift",
		"Table 4 drift",
		"Table 8 drift",
		"Table 9 drift",
		"Delegation drift",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered drift report missing %q", want)
		}
	}
}

// TestDriftSelf: a snapshot diffed against itself is all zero deltas
// with no new/gone rows.
func TestDriftSelf(t *testing.T) {
	rd := New(handDataset()).ReportData(0)
	d := Diff(rd, rd, "x", "x")
	for _, rows := range [][]DriftRow{d.Population, d.Adoption, d.Usage, d.Delegation, d.Delegated, d.Headers} {
		for _, row := range rows {
			if row.Delta != 0 || row.Status != "" {
				t.Errorf("self-diff row %+v: want zero delta, no status", row)
			}
		}
	}
}

// TestEmptyDatasetCleanZeroRows pins the empty/all-failed report
// behavior the bundle replay path depends on: a dataset with zero
// analyzable records must render clean zero rows — no NaN, no Inf —
// across the text, JSON, and HTML reports, and every percentage in
// ReportData must be finite.
func TestEmptyDatasetCleanZeroRows(t *testing.T) {
	allFailed := &store.Dataset{}
	for i := 0; i < 5; i++ {
		allFailed.Add(store.SiteRecord{Rank: i, URL: "https://down.test/", Failure: store.FailureTimeout, Error: "deadline"})
	}
	for name, ds := range map[string]*store.Dataset{
		"empty":      {},
		"all-failed": allFailed,
	} {
		t.Run(name, func(t *testing.T) {
			a := New(ds)
			if a.Websites() != 0 {
				t.Fatalf("Websites = %d, want 0", a.Websites())
			}
			text := a.FullReport()
			html := a.HTML(10)
			js, err := a.JSON(10)
			if err != nil {
				t.Fatalf("JSON: %v", err)
			}
			for label, out := range map[string]string{"text": text, "html": html, "json": string(js)} {
				for _, bad := range []string{"NaN", "+Inf", "-Inf", "null%"} {
					if strings.Contains(out, bad) {
						t.Errorf("%s report contains %q on a zero-website dataset", label, bad)
					}
				}
			}
			rd := a.ReportData(0)
			for name, v := range map[string]float64{
				"adoption pp pct":  rd.Adoption.PPDocumentsPct,
				"adoption emb pct": rd.Adoption.PPEmbeddedPct,
				"avg permissions":  rd.HeaderStats.AvgPermissions,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want finite", name, v)
				}
			}
		})
	}
}
