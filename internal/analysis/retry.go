package analysis

import (
	"sort"

	"permodyssey/internal/store"
)

// RetryRow summarizes retried visits that first failed with one class.
type RetryRow struct {
	// FirstFailure is how the first attempt failed.
	FirstFailure store.FailureClass `json:"first_failure"`
	// Sites is how many sites first failed this way and were retried.
	Sites int `json:"sites"`
	// Recovered is how many of them ultimately produced an analyzable
	// record (clean or partial); RecoveredPartial the partial subset.
	Recovered        int `json:"recovered"`
	RecoveredPartial int `json:"recovered_partial"`
	// Stuck is Sites - Recovered: every retry failed too.
	Stuck int `json:"stuck"`
	// RetriesSpent is the total extra attempts spent on these sites.
	RetriesSpent int `json:"retries_spent"`
}

// RetryStats is the retry-aware failure analysis: which transient
// failure classes the retry policy actually converts into data, and at
// what cost. The paper's single-shot crawl counts ~89k sites as
// timeout/ephemeral losses (§4); this table shows how much of that loss
// a retrying crawler claws back per class.
type RetryStats struct {
	Rows []RetryRow `json:"rows"`
	// RetriedSites is the number of sites that needed at least one
	// retry; TotalRetries the total extra attempts across the dataset
	// (equals the crawler's Stats.Retries for a fresh, uninterrupted
	// run).
	RetriedSites int `json:"retried_sites"`
	TotalRetries int `json:"total_retries"`
	// Recovered is how many retried sites ended analyzable.
	Recovered int `json:"recovered"`
}

// RetryOutcomes tallies first-attempt failure classes against final
// outcomes over every record that recorded a retry.
func (a *Analysis) RetryOutcomes() RetryStats {
	byClass := map[store.FailureClass]*RetryRow{}
	var s RetryStats
	for _, r := range a.ds.Records {
		if r.Retries == 0 {
			continue
		}
		s.RetriedSites++
		s.TotalRetries += r.Retries
		row := byClass[r.FirstAttemptFailure]
		if row == nil {
			row = &RetryRow{FirstFailure: r.FirstAttemptFailure}
			byClass[r.FirstAttemptFailure] = row
		}
		row.Sites++
		row.RetriesSpent += r.Retries
		if r.OK() {
			row.Recovered++
			s.Recovered++
			if r.Partial {
				row.RecoveredPartial++
			}
		} else {
			row.Stuck++
		}
	}
	for _, row := range byClass {
		s.Rows = append(s.Rows, *row)
	}
	sort.Slice(s.Rows, func(i, j int) bool {
		if s.Rows[i].Sites != s.Rows[j].Sites {
			return s.Rows[i].Sites > s.Rows[j].Sites
		}
		return s.Rows[i].FirstFailure < s.Rows[j].FirstFailure
	})
	return s
}

// RenderRetryTable renders the first-attempt-vs-recovered breakdown.
func RenderRetryTable(s RetryStats) Table {
	t := Table{
		Title:   "Retry outcomes by first-attempt failure class",
		Headers: []string{"First failure", "Sites", "Recovered", "Partial", "Stuck", "Retries spent"},
	}
	for _, r := range s.Rows {
		t.Rows = append(t.Rows, []string{
			string(r.FirstFailure), d(r.Sites), d(r.Recovered),
			d(r.RecoveredPartial), d(r.Stuck), d(r.RetriesSpent),
		})
	}
	t.Rows = append(t.Rows, []string{
		"total", d(s.RetriedSites), d(s.Recovered), "", d(s.RetriedSites - s.Recovered), d(s.TotalRetries),
	})
	return t
}
