package analysis

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"permodyssey/internal/browser"
	"permodyssey/internal/crawler"
	"permodyssey/internal/policy"
	"permodyssey/internal/store"
	"permodyssey/internal/synthweb"
)

var (
	dsOnce sync.Once
	dsVal  *store.Dataset
)

// dataset crawls a 1,200-site synthetic web once and shares the result
// across the analysis tests (the crawl is deterministic).
func dataset(t *testing.T) *store.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		cfg := synthweb.DefaultConfig()
		cfg.NumSites = 1200
		cfg.Seed = 42
		srv := synthweb.NewServer(cfg)
		srv.StallTime = 300 * time.Millisecond
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		b := browser.New(browser.NewHTTPFetcher(srv.Client(0)), browser.DefaultOptions())
		c := crawler.New(b, crawler.Config{Workers: 24, PerSiteTimeout: 150 * time.Millisecond})
		var targets []crawler.Target
		for _, s := range srv.Sites() {
			targets = append(targets, crawler.Target{Rank: s.Rank, URL: s.URL()})
		}
		dsVal = c.Crawl(context.Background(), targets)
	})
	if dsVal == nil {
		t.Fatal("dataset unavailable")
	}
	return dsVal
}

func TestFailureTaxonomyShape(t *testing.T) {
	a := New(dataset(t))
	counts := a.FailureTaxonomy()
	t.Logf("taxonomy: %v", counts)
	// ~88% success, like the paper's 817,800/1M ≈ 82% (we do not model
	// the paper's post-hoc exclusions at the same rate).
	okShare := pct(counts["ok"], a.TotalRecords())
	if okShare < 80 || okShare > 95 {
		t.Errorf("success share %.1f%% out of the expected band", okShare)
	}
	for _, class := range []store.FailureClass{
		store.FailureUnreachable, store.FailureTimeout, store.FailureEphemeral,
	} {
		if counts[class] == 0 {
			t.Errorf("class %q absent", class)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	a := New(dataset(t))
	rows, total := a.Table3TopEmbeds(10)
	if len(rows) < 5 {
		t.Fatalf("rows: %d", len(rows))
	}
	t.Logf("table 3 head: %+v (total %d)", rows[:3], total)
	// google.com dominates inclusion in the paper; with our calibrated
	// probabilities it must rank top-3.
	foundGoogle := false
	for _, r := range rows[:3] {
		if r.Site == "google.com" {
			foundGoogle = true
		}
	}
	if !foundGoogle {
		t.Errorf("google.com must rank in the top 3: %+v", rows)
	}
	if total < rows[0].Count {
		t.Error("total any-site must dominate the best single site")
	}
}

func TestTable4Shape(t *testing.T) {
	a := New(dataset(t))
	rows, total, sum := a.Table4Invocations(10)
	if len(rows) == 0 {
		t.Fatal("no usage rows")
	}
	t.Logf("table 4 head: %+v", rows[0])
	// General Permission APIs lead by a wide margin (paper: 482,309 of
	// 585,694 contexts).
	if rows[0].Name != "General Permission APIs" {
		t.Errorf("top row = %q; want General Permission APIs", rows[0].Name)
	}
	if rows[0].TotalContexts*2 < total.TotalContexts {
		t.Error("general APIs should account for a large share of contexts")
	}
	// Top-level invocations dominated by third-party scripts (98.32% in
	// the paper).
	if total.Top3PPct < 55 {
		t.Errorf("top-level 3P share %.1f%% too low; the web's activity is third-party-driven", total.Top3PPct)
	}
	// Embedded contexts dominated by first-party scripts (74.86%).
	if total.Emb1PPct < 55 {
		t.Errorf("embedded 1P share %.1f%% too low", total.Emb1PPct)
	}
	// Headline share: ~40% of websites invoke something (paper 40.65%).
	share := pct(sum.WithAnyInvocation, sum.Websites)
	if share < 25 || share > 68 {
		t.Errorf("dynamic-activity share %.1f%% outside the calibration band", share)
	}
	if sum.WithTopLevelActivity < sum.WithEmbeddedActivity {
		t.Error("top-level activity must exceed embedded activity (39.41% vs 7.98%)")
	}
	if sum.DeprecatedAPIWebsites == 0 {
		t.Error("deprecated Feature-Policy API reliance must be visible")
	}
}

func TestTable5Shape(t *testing.T) {
	a := New(dataset(t))
	rows, _, stats := a.Table5StatusChecks(10)
	if len(rows) == 0 {
		t.Fatal("no check rows")
	}
	if rows[0].Name != "All Permissions" {
		t.Errorf("top checked row = %q; want All Permissions (websites retrieve the full list)", rows[0].Name)
	}
	if stats.MeanPerTop <= 1 || stats.MeanPerTop > 8 {
		t.Errorf("mean specific permissions checked %.2f outside band (paper: 1.74)", stats.MeanPerTop)
	}
	if stats.MaxPerTop < 3 {
		t.Errorf("max specific permissions checked %d too low", stats.MaxPerTop)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
	}
	if !names["Attribution Reporting"] {
		t.Errorf("attribution-reporting checks must rank (ad scripts): %v", names)
	}
}

func TestTable6Shape(t *testing.T) {
	a := New(dataset(t))
	rows, _, sum := a.Table6Static(10)
	if len(rows) == 0 {
		t.Fatal("no static rows")
	}
	share := pct(sum.Websites, a.Websites())
	if share < 15 || share > 60 {
		t.Errorf("static share %.1f%% outside band (paper 30.5%%)", share)
	}
	// Shape invariant: string matching misses obfuscated/minified code,
	// so static detection trails dynamic (paper: 30.5%% vs 40.65%%).
	_, _, usum := a.Table4Invocations(0)
	if sum.Websites >= usum.WithAnyInvocation {
		t.Errorf("static websites (%d) must trail dynamic websites (%d)", sum.Websites, usum.WithAnyInvocation)
	}
	// Camera and Microphone have identical counts (they share the
	// getUserMedia pattern — the paper shows 26,456 for both).
	var cam, mic int
	for _, r := range rows {
		switch r.Name {
		case "Camera":
			cam = r.Websites
		case "Microphone":
			mic = r.Websites
		}
	}
	if cam != 0 && cam != mic {
		t.Errorf("camera (%d) and microphone (%d) static counts must match", cam, mic)
	}
}

func TestHybridHeadline(t *testing.T) {
	a := New(dataset(t))
	hy := a.SummaryHybrid()
	share := pct(hy.AnyActivity, hy.Websites)
	t.Logf("hybrid: %.2f%% (dynamic-only %d, static-only %d, both %d)",
		share, hy.DynamicOnly, hy.StaticOnly, hy.Both)
	// Paper: 48.52%; static adds coverage over dynamic alone.
	if share < 30 || share > 72 {
		t.Errorf("hybrid share %.1f%% outside band", share)
	}
	if hy.StaticOnly == 0 {
		t.Error("static analysis must add websites dynamic missed (the A.3 result)")
	}
}

func TestDelegationShape(t *testing.T) {
	a := New(dataset(t))
	ds := a.SummaryDelegation()
	share := pct(ds.AnyDelegation, ds.Websites)
	t.Logf("delegation: any %.2f%%, external %.2f%%", share, pct(ds.ExternalDelegation, ds.Websites))
	// Paper: 12.07% any, 10.8% external.
	if share < 6 || share > 25 {
		t.Errorf("delegation share %.1f%% outside band", share)
	}
	if ds.ExternalDelegation > ds.AnyDelegation {
		t.Error("external ⊆ any")
	}
	if ds.ThirdPartyDelegation > ds.ExternalDelegation {
		t.Error("third-party ⊆ external")
	}

	rows, _ := a.Table7DelegatedEmbeds(10)
	if len(rows) < 5 {
		t.Fatalf("table 7 rows: %d", len(rows))
	}
	sites := map[string]int{}
	for _, r := range rows {
		sites[r.Site] = r.Count
	}
	// livechatinc.com is included almost always WITH delegation, and
	// google.com almost never: livechat must appear in Table 7's top
	// despite being less popular in Table 3.
	if sites["livechatinc.com"] == 0 {
		t.Errorf("livechatinc.com must appear in table 7: %+v", rows)
	}

	t8, t8Total := a.Table8DelegatedPermissions(10)
	if len(t8) == 0 {
		t.Fatal("no delegated permissions")
	}
	if t8[0].Name != "autoplay" {
		t.Errorf("most-delegated permission = %q; want autoplay (Table 8)", t8[0].Name)
	}
	if t8Total.Delegations < t8Total.Websites {
		t.Error("delegations ≥ websites")
	}
}

func TestDirectiveSharesShape(t *testing.T) {
	a := New(dataset(t))
	s := a.DelegationDirectives()
	t.Logf("directives: default %.1f%% wildcard %.1f%%", s.DefaultSrc, s.Wildcard)
	// Paper: 82.12% default, 17.17% wildcard, the rest ≈ 0.7%.
	if s.DefaultSrc < 55 {
		t.Errorf("default-src share %.1f%% too low", s.DefaultSrc)
	}
	if s.Wildcard < 5 || s.Wildcard > 40 {
		t.Errorf("wildcard share %.1f%% outside band", s.Wildcard)
	}
	if s.DefaultSrc < s.Wildcard {
		t.Error("defaults must dominate wildcards")
	}
}

func TestFigure2Shape(t *testing.T) {
	a := New(dataset(t))
	s := a.Figure2Adoption()
	t.Logf("adoption: PP %.2f%% (top %.2f%%, emb %.2f%%), FP %.2f%%",
		s.PPDocumentsPct, s.PPTopLevelPct, s.PPEmbeddedPct, s.FPDocumentsPct)
	// Paper: 7.90% PP vs 0.51% FP; embedded ~3x top-level (12.3% vs 4.5%).
	if s.PPDocumentsPct <= s.FPDocumentsPct {
		t.Error("Permissions-Policy must dominate Feature-Policy")
	}
	if s.PPTopLevelPct < 2 || s.PPTopLevelPct > 9 {
		t.Errorf("top-level adoption %.2f%% outside band (paper 4.5%%)", s.PPTopLevelPct)
	}
	if s.PPEmbeddedPct <= s.PPTopLevelPct {
		t.Error("embedded adoption must exceed top-level (widgets serve headers)")
	}
}

func TestTable9Shape(t *testing.T) {
	a := New(dataset(t))
	rows, total, stats := a.Table9HeaderDirectives(10)
	if len(rows) == 0 {
		t.Fatal("no header directive rows")
	}
	t.Logf("header stats: %d sites, avg %.2f perms, disable %.1f%% self %.1f%% star %.1f%%",
		stats.ParsedWebsites, stats.AvgPermissions, stats.DisablePct, stats.SelfPct, stats.AllPct)
	// Paper: 83.5% of directives disable; disable+self = 93.19%.
	if stats.DisablePct < 60 {
		t.Errorf("disable share %.1f%% too low", stats.DisablePct)
	}
	if stats.DisablePct+stats.SelfPct < 80 {
		t.Errorf("disable+self %.1f%% too low (paper 93.19%%)", stats.DisablePct+stats.SelfPct)
	}
	if stats.PowerfulDisableOrSelfPct < stats.DisablePct {
		t.Error("powerful permissions are restricted even more tightly (paper 97.08%)")
	}
	// The template signature: sizes 18 and 1 are the most common.
	hist := stats.SizeHistogram
	if hist[18] == 0 || hist[1] == 0 {
		t.Errorf("template sizes 18/1 must appear: %v", hist)
	}
	if total.Counts[policy.BreadthDisable] == 0 {
		t.Error("disable directives must dominate the total row")
	}
}

func TestMisconfigurationsShape(t *testing.T) {
	a := New(dataset(t))
	s := a.Misconfigurations()
	t.Logf("misconfig: %d frames with header, %d syntax errors, kinds %v",
		s.FramesWithHeader, s.SyntaxErrorFrames, s.ByKind)
	if s.SyntaxErrorFrames == 0 {
		t.Error("syntax-invalid headers must appear (paper: 2% of frames)")
	}
	if s.ByKind[policy.IssueFeaturePolicySyntax] == 0 {
		t.Error("Feature-Policy-syntax errors are the most common class")
	}
	if s.SemanticMisconfigWebsites == 0 {
		t.Error("semantic misconfigurations must appear")
	}
	share := pct(s.SyntaxErrorFrames, s.FramesWithHeader)
	if share > 15 {
		t.Errorf("syntax-error share %.1f%% implausibly high", share)
	}
}

func TestOverPermissionedShape(t *testing.T) {
	a := New(dataset(t))
	rows, total := a.OverPermissioned(DefaultOverPermissionConfig(), 10)
	if len(rows) == 0 {
		t.Fatal("no over-permissioned widgets found")
	}
	t.Logf("over-permissioned head: %+v (total %d)", rows[0], total)
	bySite := map[string]OverPermissionRow{}
	for _, r := range rows {
		bySite[r.Site] = r
	}
	// livechatinc.com: camera/microphone/clipboard-read unused (§5.2).
	lc, ok := bySite["livechatinc.com"]
	if !ok {
		t.Fatalf("livechatinc.com must be over-permissioned: %+v", rows)
	}
	joined := strings.Join(lc.UnusedPermissions, ",")
	for _, p := range []string{"camera", "microphone", "clipboard-read"} {
		if !strings.Contains(joined, p) {
			t.Errorf("livechat unused permissions %v missing %s", lc.UnusedPermissions, p)
		}
	}
	// youtube.com: accelerometer/gyroscope unused, but NOT autoplay or
	// encrypted-media (which its player actually uses).
	yt, ok := bySite["youtube.com"]
	if ok {
		ytJoined := strings.Join(yt.UnusedPermissions, ",")
		if !strings.Contains(ytJoined, "accelerometer") || !strings.Contains(ytJoined, "gyroscope") {
			t.Errorf("youtube unused: %v", yt.UnusedPermissions)
		}
		if strings.Contains(ytJoined, "autoplay") || strings.Contains(ytJoined, "encrypted-media") {
			t.Errorf("youtube's used permissions misclassified as unused: %v", yt.UnusedPermissions)
		}
	}
	// meetwidget.com actually uses camera/microphone → must NOT be
	// flagged for them.
	if mw, ok := bySite["meetwidget.com"]; ok {
		mj := strings.Join(mw.UnusedPermissions, ",")
		if strings.Contains(mj, "camera") || strings.Contains(mj, "microphone") {
			t.Errorf("meetwidget uses its delegations; flagged: %v", mw.UnusedPermissions)
		}
	}
	// Powerful filter keeps camera/mic widgets.
	powerful := PowerfulUnused(rows)
	if len(powerful) == 0 {
		t.Error("powerful-unused filter must keep customer-support widgets")
	}
}

func TestWildcardRisks(t *testing.T) {
	a := New(dataset(t))
	risks := a.WildcardRisks()
	found := false
	for _, r := range risks {
		if r.Site == "livechatinc.com" {
			found = true
			joined := strings.Join(r.Permissions, ",")
			if !strings.Contains(joined, "camera") || !strings.Contains(joined, "microphone") {
				t.Errorf("livechat wildcard perms: %v", r.Permissions)
			}
		}
	}
	if !found {
		t.Errorf("livechatinc.com's wildcard delegations must be flagged: %+v", risks)
	}
}

func TestFrameCensus(t *testing.T) {
	a := New(dataset(t))
	fs := a.Frames()
	t.Logf("census: %+v", fs)
	if fs.EmbeddedFrames == 0 || fs.LocalEmbedded == 0 || fs.ExternalEmbedded == 0 {
		t.Fatal("census must include local and external embedded frames")
	}
	// Paper: 54.1% of embedded frames are local documents.
	localShare := pct(fs.LocalEmbedded, fs.EmbeddedFrames)
	if localShare < 25 || localShare > 75 {
		t.Errorf("local-embedded share %.1f%% outside band (paper 54.1%%)", localShare)
	}
	if fs.AvgIframesPerSite < 1.5 || fs.AvgIframesPerSite > 6 {
		t.Errorf("avg iframes %.1f outside band (paper 3.2)", fs.AvgIframesPerSite)
	}
}

func TestFullReportRenders(t *testing.T) {
	a := New(dataset(t))
	report := a.FullReport()
	for _, want := range []string{
		"Table 3", "Table 4", "Table 5", "Table 6", "Table 7", "Table 8",
		"Table 9", "Figure 2", "Table 10/13", "General Permission APIs",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(report) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(report))
	}
}
