package analysis

import (
	"fmt"
	"sort"
	"strings"

	"permodyssey/internal/store"
)

// DriftRow is one compared metric: its value in the before and after
// snapshots, and how it moved. Status marks rows that exist on only
// one side — a permission newly in use ("new") or one that vanished
// ("gone") — which per-table deltas would otherwise hide.
type DriftRow struct {
	Name      string  `json:"name"`
	Before    int     `json:"before"`
	After     int     `json:"after"`
	Delta     int     `json:"delta"`
	Status    string  `json:"status,omitempty"`
	BeforePct float64 `json:"before_pct,omitempty"`
	AfterPct  float64 `json:"after_pct,omitempty"`
	HasPct    bool    `json:"-"`
}

// DriftReport is the longitudinal comparison of two ReportData
// snapshots — the paper's measurement repeated over time, reduced to
// what moved: population health, header adoption (Figure 2), dynamic
// API usage (Table 4), delegation (summary + Table 8), and
// header-declared permissions (Table 9).
type DriftReport struct {
	LabelA, LabelB string     `json:"-"`
	Population     []DriftRow `json:"population"`
	Adoption       []DriftRow `json:"adoption"`
	Usage          []DriftRow `json:"usage"`
	Delegation     []DriftRow `json:"delegation"`
	Delegated      []DriftRow `json:"delegated_permissions"`
	Headers        []DriftRow `json:"header_permissions"`
}

// Diff compares two report snapshots, before → after. Compute both
// sides with ReportData(0) — unbounded tables — so a permission
// appearing or disappearing is population drift, never a top-N
// truncation artifact. The output ordering is deterministic: within
// each section, absolute delta descending, then name.
func Diff(before, after ReportData, labelA, labelB string) DriftReport {
	d := DriftReport{LabelA: labelA, LabelB: labelB}

	d.Population = append(d.Population,
		DriftRow{Name: "analyzable websites", Before: before.Websites, After: after.Websites, Delta: after.Websites - before.Websites},
		DriftRow{Name: "total records", Before: before.TotalRecords, After: after.TotalRecords, Delta: after.TotalRecords - before.TotalRecords},
	)
	d.Population = append(d.Population, diffCounts(failureCounts(before.Failures), failureCounts(after.Failures), "failures: ")...)

	d.Adoption = adoptionDrift(before.Adoption, after.Adoption)

	d.Usage = diffCounts(usageCounts(before.Table4), usageCounts(after.Table4), "")
	d.Delegated = diffCounts(delegatedCounts(before.Table8), delegatedCounts(after.Table8), "")
	d.Headers = diffCounts(headerCounts(before.Table9), headerCounts(after.Table9), "")

	d.Delegation = []DriftRow{
		delta("websites with any delegation", before.Delegation.AnyDelegation, after.Delegation.AnyDelegation),
		delta("websites delegating to external embeds", before.Delegation.ExternalDelegation, after.Delegation.ExternalDelegation),
		delta("third-party delegated iframes", before.Delegation.ThirdPartyDelegation, after.Delegation.ThirdPartyDelegation),
		delta("deep (depth>1) delegated frames", before.Nested.DeepDelegated, after.Nested.DeepDelegated),
	}
	return d
}

func delta(name string, before, after int) DriftRow {
	return DriftRow{Name: name, Before: before, After: after, Delta: after - before}
}

func failureCounts(m map[store.FailureClass]int) map[string]int {
	out := make(map[string]int, len(m))
	for class, n := range m {
		name := string(class)
		if name == "" {
			name = "none"
		}
		out[name] = n
	}
	return out
}

func usageCounts(rows []UsageRow) map[string]int {
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		out[r.Name] = r.TotalContexts
	}
	return out
}

func delegatedCounts(rows []DelegatedPermissionRow) map[string]int {
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		out[r.Name] = r.Websites
	}
	return out
}

func headerCounts(rows []DirectiveBreadthRow) map[string]int {
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		out[r.Name] = r.Websites
	}
	return out
}

// diffCounts turns two name→count maps into drift rows over the union
// of names, marking one-sided names new/gone and dropping untouched
// zero rows. Deterministic order: |delta| descending, then name.
func diffCounts(before, after map[string]int, prefix string) []DriftRow {
	names := make(map[string]bool, len(before)+len(after))
	for n := range before {
		names[n] = true
	}
	for n := range after {
		names[n] = true
	}
	rows := make([]DriftRow, 0, len(names))
	for n := range names {
		b, inB := before[n]
		a, inA := after[n]
		row := DriftRow{Name: prefix + n, Before: b, After: a, Delta: a - b}
		switch {
		case !inB:
			row.Status = "new"
		case !inA:
			row.Status = "gone"
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := abs(rows[i].Delta), abs(rows[j].Delta)
		if di != dj {
			return di > dj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func adoptionDrift(b, a AdoptionStats) []DriftRow {
	pctRow := func(name string, bc, ac int, bp, ap float64) DriftRow {
		return DriftRow{Name: name, Before: bc, After: ac, Delta: ac - bc, BeforePct: bp, AfterPct: ap, HasPct: true}
	}
	return []DriftRow{
		delta("documents (non-local)", b.Documents, a.Documents),
		pctRow("Permissions-Policy documents", b.PPDocuments, a.PPDocuments, b.PPDocumentsPct, a.PPDocumentsPct),
		pctRow("Feature-Policy documents", b.FPDocuments, a.FPDocuments, b.FPDocumentsPct, a.FPDocumentsPct),
		delta("documents with both headers", b.BothDocuments, a.BothDocuments),
		pctRow("PP on top-level documents", b.PPTopLevel, a.PPTopLevel, b.PPTopLevelPct, a.PPTopLevelPct),
		pctRow("PP on embedded documents", b.PPEmbedded, a.PPEmbedded, b.PPEmbeddedPct, a.PPEmbeddedPct),
	}
}

// signed renders a delta with an explicit sign so "no change" reads as
// +0 rather than a bare count.
func signed(v int) string { return fmt.Sprintf("%+d", v) }

func driftTable(title, counted, labelA, labelB string, rows []DriftRow) Table {
	hasPct := false
	for _, r := range rows {
		if r.HasPct {
			hasPct = true
			break
		}
	}
	t := Table{Title: title}
	if hasPct {
		t.Headers = []string{counted, labelA, "", labelB, "", "Δ"}
	} else {
		t.Headers = []string{counted, labelA, labelB, "Δ", ""}
	}
	for _, r := range rows {
		if hasPct {
			bp, ap := "", ""
			if r.HasPct {
				bp, ap = f2(r.BeforePct), f2(r.AfterPct)
			}
			t.Rows = append(t.Rows, []string{r.Name, d(r.Before), bp, d(r.After), ap, signed(r.Delta)})
		} else {
			t.Rows = append(t.Rows, []string{r.Name, d(r.Before), d(r.After), signed(r.Delta), r.Status})
		}
	}
	return t
}

// String renders the drift report as aligned text tables, fully
// deterministic for a given pair of snapshots.
func (r DriftReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Longitudinal drift report: %s → %s\n", r.LabelA, r.LabelB)
	newGone := func(rows []DriftRow) (n, g int) {
		for _, row := range rows {
			switch row.Status {
			case "new":
				n++
			case "gone":
				g++
			}
		}
		return
	}
	un, ug := newGone(r.Usage)
	hn, hg := newGone(r.Headers)
	dn, dg := newGone(r.Delegated)
	fmt.Fprintf(&b, "permissions: %d newly invoked, %d no longer invoked; %d newly declared in headers, %d dropped; %d newly delegated, %d no longer delegated\n\n",
		un, ug, hn, hg, dn, dg)
	sections := []Table{
		driftTable("Population", "Metric", r.LabelA, r.LabelB, r.Population),
		driftTable("Figure 2 drift: header adoption (documents)", "Metric", r.LabelA, r.LabelB, r.Adoption),
		driftTable("Table 4 drift: permission API usage (total contexts)", "Permission", r.LabelA, r.LabelB, r.Usage),
		driftTable("Delegation drift", "Metric", r.LabelA, r.LabelB, r.Delegation),
		driftTable("Table 8 drift: delegated permissions (websites)", "Permission", r.LabelA, r.LabelB, r.Delegated),
		driftTable("Table 9 drift: header-declared permissions (websites)", "Permission", r.LabelA, r.LabelB, r.Headers),
	}
	for i, t := range sections {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.String())
	}
	return b.String()
}
