package analysis

import (
	"strings"
	"testing"
)

func TestNestedDelegations(t *testing.T) {
	a := New(dataset(t))
	s := a.NestedDelegations()
	t.Logf("nested: %+v", s)
	if s.DeepFrames == 0 {
		t.Fatal("the synthetic web nests frames (safeframe creatives)")
	}
	if s.DeepDelegated == 0 {
		t.Fatal("nested delegations must appear")
	}
	if s.WebsitesWithChains == 0 {
		t.Fatal("≥2-hop delegation chains must appear")
	}
	if s.ChainsByPermission["attribution-reporting"] == 0 {
		t.Errorf("ad chains flow attribution-reporting: %v", s.ChainsByPermission)
	}
}

func TestDelegatedEmbedPrevalence(t *testing.T) {
	a := New(dataset(t))
	tiers := a.DelegatedEmbedPrevalence([]int{1, 5, 25})
	if len(tiers) != 3 {
		t.Fatalf("tiers: %v", tiers)
	}
	// Monotone decreasing with threshold — the paper's head/tail shape
	// (34 sites ≥100 websites, only 13 ≥1,000).
	if !(tiers[0].Sites >= tiers[1].Sites && tiers[1].Sites >= tiers[2].Sites) {
		t.Errorf("prevalence must decrease with threshold: %v", tiers)
	}
	if tiers[0].Sites == 0 || tiers[2].Sites == 0 {
		t.Errorf("tiers empty: %v", tiers)
	}
	if tiers[0].Sites == tiers[2].Sites {
		t.Errorf("long tail missing: %v", tiers)
	}
}

func TestReportOnlyAdoption(t *testing.T) {
	a := New(dataset(t))
	s := a.ReportOnly()
	t.Logf("report-only: %+v", s)
	if s.WithReportOnly == 0 {
		t.Fatal("report-only headers must appear in the population")
	}
	if s.WithReportOnly >= s.Documents/10 {
		t.Errorf("report-only should be rare: %d of %d", s.WithReportOnly, s.Documents)
	}
	if s.AlsoEnforcing == 0 {
		t.Error("report-only adopters in this population also enforce")
	}
	if s.EndpointsSeen == 0 {
		t.Error("report-to endpoints must be extracted")
	}
}

func TestHTMLReport(t *testing.T) {
	a := New(dataset(t))
	out := a.HTML(10)
	for _, want := range []string{
		"<!DOCTYPE html>", "Table 3", "Table 4", "Figure 2",
		"Tables 10/13", "Delegation purposes", "livechatinc.com",
	} {
		if !containsStr(out, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	if len(out) < 5000 {
		t.Errorf("HTML report too short: %d bytes", len(out))
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && strings.Contains(haystack, needle)
}

func TestEmbeddedHeaders(t *testing.T) {
	a := New(dataset(t))
	s := a.EmbeddedHeaders(10)
	t.Logf("embedded headers: docs=%d disable=%.1f%% self=%.1f%% all=%.1f%% powerful=%.1f%%",
		s.Documents, s.DisablePct, s.SelfPct, s.AllPct, s.PowerfulDirectivePct)
	if s.Documents == 0 {
		t.Fatal("embedded documents serve headers (ad/video widgets)")
	}
	// §4.3.2: the most prevalent embedded directives are UA Client-Hints
	// features, and the '*' share is far higher than at top level.
	if len(s.TopFeatures) == 0 {
		t.Fatal("no embedded features")
	}
	foundCH := false
	for _, f := range s.TopFeatures[:min(4, len(s.TopFeatures))] {
		if strings.HasPrefix(f.Site, "ch-ua") {
			foundCH = true
		}
	}
	if !foundCH {
		t.Errorf("UA-CH features must top the embedded ranking: %+v", s.TopFeatures[:min(4, len(s.TopFeatures))])
	}
	if s.AllPct < 20 {
		t.Errorf("embedded '*' share %.1f%% too low (paper 30.73%%)", s.AllPct)
	}
	// Powerful directives are a much smaller share embedded than the
	// top-level header content (paper 26.30%% vs 56.29%%).
	_, _, topStats := a.Table9HeaderDirectives(0)
	_ = topStats
	if s.PowerfulDirectivePct > 50 {
		t.Errorf("embedded powerful-directive share %.1f%% implausibly high", s.PowerfulDirectivePct)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
