package analysis

import (
	"sort"
	"strings"

	"permodyssey/internal/policy"
)

// DelegationSummary carries the §4.2 headline shares.
type DelegationSummary struct {
	Websites int
	// AnyDelegation: websites delegating permissions to embedded
	// documents on the landing page (12.07% in the paper).
	AnyDelegation int
	// ExternalDelegation: delegation on external-URL iframes only
	// (10.8%).
	ExternalDelegation int
	// ThirdPartyDelegation: top-level documents loading a delegated
	// iframe from a different site (119,778 in the paper).
	ThirdPartyDelegation int
}

// SummaryDelegation computes §4.2's headline shares. Only directly
// inserted iframes (depth 1) count, per the paper's simplification.
func (a *Analysis) SummaryDelegation() DelegationSummary {
	s := DelegationSummary{Websites: len(a.recs)}
	for _, rec := range a.recs {
		topSite := rec.Page.TopFrame().Site
		any, external, thirdParty := false, false, false
		for _, f := range rec.Page.EmbeddedFrames() {
			if f.Depth != 1 || !f.Element.HasAllow {
				continue
			}
			p, _ := policy.ParseAllowAttr(f.Element.Allow)
			if p.Empty() {
				continue
			}
			any = true
			if !f.LocalScheme && f.Site != "" {
				external = true
				if f.Site != topSite {
					thirdParty = true
				}
			}
		}
		if any {
			s.AnyDelegation++
		}
		if external {
			s.ExternalDelegation++
		}
		if thirdParty {
			s.ThirdPartyDelegation++
		}
	}
	return s
}

// Table7DelegatedEmbeds ranks external embedded sites by websites that
// include them WITH delegated permissions (paper Table 7).
func (a *Analysis) Table7DelegatedEmbeds(n int) (rows []SiteCount, totalAnySite int) {
	counts := map[string]int{}
	any := 0
	for _, rec := range a.recs {
		topSite := rec.Page.TopFrame().Site
		seen := map[string]bool{}
		found := false
		for _, f := range rec.Page.EmbeddedFrames() {
			if f.Depth != 1 || f.LocalScheme || f.Site == "" || f.Site == topSite || !f.Element.HasAllow {
				continue
			}
			p, _ := policy.ParseAllowAttr(f.Element.Allow)
			if p.Empty() {
				continue
			}
			found = true
			if !seen[f.Site] {
				seen[f.Site] = true
				counts[f.Site]++
			}
		}
		if found {
			any++
		}
	}
	return topCounts(counts, n), any
}

// DelegatedPermissionRow is one row of Table 8.
type DelegatedPermissionRow struct {
	Name        string
	Delegations int // iframe × permission pairs
	Websites    int
}

// Table8DelegatedPermissions ranks permissions delegated to external
// embedded documents (paper Table 8).
func (a *Analysis) Table8DelegatedPermissions(n int) ([]DelegatedPermissionRow, DelegatedPermissionRow) {
	type cell struct {
		delegations int
		websites    map[int]bool
	}
	perName := map[string]*cell{}
	total := &cell{websites: map[int]bool{}}
	for _, rec := range a.recs {
		topSite := rec.Page.TopFrame().Site
		for _, f := range rec.Page.EmbeddedFrames() {
			if f.Depth != 1 || f.LocalScheme || f.Site == "" || f.Site == topSite || !f.Element.HasAllow {
				continue
			}
			p, _ := policy.ParseAllowAttr(f.Element.Allow)
			for _, d := range p.Directives {
				if d.Allowlist.None() {
					continue // 'none' opts out; it delegates nothing
				}
				c, ok := perName[d.Feature]
				if !ok {
					c = &cell{websites: map[int]bool{}}
					perName[d.Feature] = c
				}
				c.delegations++
				c.websites[rec.Rank] = true
				total.delegations++
				total.websites[rec.Rank] = true
			}
		}
	}
	rows := make([]DelegatedPermissionRow, 0, len(perName))
	for name, c := range perName {
		rows = append(rows, DelegatedPermissionRow{
			Name: name, Delegations: c.delegations, Websites: len(c.websites),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Websites != rows[j].Websites {
			return rows[i].Websites > rows[j].Websites
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows, DelegatedPermissionRow{
		Name: "Total (any permission)", Delegations: total.delegations, Websites: len(total.websites),
	}
}

// DirectiveShares is the §4.2.2 distribution of how allow-attribute
// directives are expressed (82.12% default to src, 17.17% wildcard...).
type DirectiveShares struct {
	Total       int
	DefaultSrc  float64
	Wildcard    float64
	ExplicitSrc float64
	None        float64
	SingleOrig  float64
	Self        float64
	NoneCount   int
}

// DelegationDirectives computes the §4.2.2 distribution over every
// delegation directive on external iframes.
func (a *Analysis) DelegationDirectives() DirectiveShares {
	counts := map[policy.DelegationDirectiveKind]int{}
	total := 0
	for _, rec := range a.recs {
		for _, f := range rec.Page.EmbeddedFrames() {
			if f.Depth != 1 || f.LocalScheme || !f.Element.HasAllow {
				continue
			}
			for _, raw := range strings.Split(f.Element.Allow, ";") {
				if strings.TrimSpace(raw) == "" {
					continue
				}
				_, kind, ok := policy.ClassifyAllowDirective(raw)
				if !ok {
					continue
				}
				counts[kind]++
				total++
			}
		}
	}
	return DirectiveShares{
		Total:       total,
		DefaultSrc:  pct(counts[policy.DelegationDefaultSrc], total),
		Wildcard:    pct(counts[policy.DelegationWildcard], total),
		ExplicitSrc: pct(counts[policy.DelegationExplicitSrc], total),
		None:        pct(counts[policy.DelegationNone], total),
		SingleOrig:  pct(counts[policy.DelegationOrigin], total),
		Self:        pct(counts[policy.DelegationSelf], total),
		NoneCount:   counts[policy.DelegationNone],
	}
}
