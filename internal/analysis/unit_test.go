package analysis

import (
	"testing"

	"permodyssey/internal/browser"
	"permodyssey/internal/html"
	"permodyssey/internal/static"
	"permodyssey/internal/store"
	"permodyssey/internal/webapi"
)

// handDataset builds a tiny, fully-specified dataset where every
// expected number can be verified by hand.
func handDataset() *store.Dataset {
	inv := func(api string, kind webapi.Kind, perms []string, scriptURL string, all bool) webapi.Invocation {
		return webapi.Invocation{API: api, Kind: kind, Permissions: perms, ScriptURL: scriptURL, AllPermissions: all}
	}
	ds := &store.Dataset{}

	// Site 1: header camera=(), battery invoked by 3P at top level,
	// youtube iframe with delegation, srcdoc local frame.
	ds.Add(store.SiteRecord{Rank: 1, URL: "https://one.example/", Page: &browser.PageResult{
		URL: "https://one.example/",
		Frames: []browser.FrameResult{
			{
				URL: "https://one.example/", FinalURL: "https://one.example/",
				TopLevel: true, Origin: "https://one.example", Site: "one.example",
				HasPermissionsPolicy: true, HeaderValid: true,
				PermissionsPolicyRaw: "camera=(), geolocation=(self)",
				Invocations: []webapi.Invocation{
					inv("navigator.getBattery", webapi.KindInvocation, []string{"battery"}, "https://cdn3p.example/a.js", false),
					inv("navigator.getBattery", webapi.KindInvocation, []string{"battery"}, "https://cdn3p.example/a.js", false), // dup: dedup to 1 context
					inv("document.featurePolicy.allowedFeatures", webapi.KindStatusCheck, nil, "https://cdn3p.example/a.js", true),
				},
				StaticFindings: []static.Finding{{Permission: "battery", Pattern: "navigator.getBattery"}},
			},
			{
				URL: "https://youtube.com/embed", FinalURL: "https://youtube.com/embed",
				Depth: 1, Origin: "https://youtube.com", Site: "youtube.com",
				Element: html.Iframe{Src: "https://youtube.com/embed", Allow: "autoplay; gyroscope", HasAllow: true},
				Invocations: []webapi.Invocation{
					inv("element.play", webapi.KindInvocation, []string{"autoplay"}, "", false),
				},
			},
			{
				URL: "about:srcdoc", FinalURL: "about:srcdoc", Depth: 1,
				LocalScheme: true, Origin: "null",
			},
		},
	}})

	// Site 2: broken header (FP syntax), geolocation 1P top level,
	// youtube iframe WITHOUT delegation.
	ds.Add(store.SiteRecord{Rank: 2, URL: "https://two.example/", Page: &browser.PageResult{
		URL: "https://two.example/",
		Frames: []browser.FrameResult{
			{
				URL: "https://two.example/", FinalURL: "https://two.example/",
				TopLevel: true, Origin: "https://two.example", Site: "two.example",
				HasPermissionsPolicy: true, HeaderValid: false,
				PermissionsPolicyRaw: "camera 'none'",
				Invocations: []webapi.Invocation{
					inv("navigator.geolocation.getCurrentPosition", webapi.KindInvocation, []string{"geolocation"}, "", false),
				},
			},
			{
				URL: "https://youtube.com/embed", FinalURL: "https://youtube.com/embed",
				Depth: 1, Origin: "https://youtube.com", Site: "youtube.com",
				Element: html.Iframe{Src: "https://youtube.com/embed"},
			},
		},
	}})

	// Site 3: failed visit.
	ds.Add(store.SiteRecord{Rank: 3, URL: "https://three.example/", Failure: store.FailureTimeout})
	return ds
}

func TestHandCraftedCounts(t *testing.T) {
	a := New(handDataset())
	if a.Websites() != 2 || a.TotalRecords() != 3 {
		t.Fatalf("census: %d/%d", a.Websites(), a.TotalRecords())
	}

	// Table 3: youtube.com included by both sites.
	t3, total := a.Table3TopEmbeds(10)
	if len(t3) != 1 || t3[0].Site != "youtube.com" || t3[0].Count != 2 || total != 2 {
		t.Errorf("table 3: %+v total=%d", t3, total)
	}

	// Table 4: battery 1 top-level ctx (100% 3P), geolocation 1 (100%
	// 1P), autoplay 1 embedded (1P), general 1 top ctx.
	rows, totalRow, sum := a.Table4Invocations(0)
	byName := map[string]UsageRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	bat := byName["Battery"]
	if bat.TopContexts != 1 || bat.Top3PPct != 100 || bat.Top1PPct != 0 {
		t.Errorf("battery row: %+v", bat)
	}
	geo := byName["Geolocation"]
	if geo.TopContexts != 1 || geo.Top1PPct != 100 {
		t.Errorf("geolocation row: %+v", geo)
	}
	ap := byName["Autoplay"]
	if ap.EmbContexts != 1 || ap.Emb1PPct != 100 {
		t.Errorf("autoplay row: %+v", ap)
	}
	gen := byName["General Permission APIs"]
	if gen.TopContexts != 1 {
		t.Errorf("general row: %+v", gen)
	}
	// Total: top contexts = 2 (one per site), embedded = 1.
	if totalRow.TopContexts != 2 || totalRow.EmbContexts != 1 {
		t.Errorf("total row: %+v", totalRow)
	}
	if sum.WithAnyInvocation != 2 || sum.WithTopLevelActivity != 2 || sum.WithEmbeddedActivity != 1 {
		t.Errorf("summary: %+v", sum)
	}

	// Table 5: one All-Permissions check on one website.
	t5, _, cstats := a.Table5StatusChecks(0)
	if len(t5) != 1 || t5[0].Name != "All Permissions" || t5[0].Websites != 1 {
		t.Errorf("table 5: %+v", t5)
	}
	if cstats.Websites != 1 || cstats.AtTopLevel != 1 || cstats.InEmbedded != 0 {
		t.Errorf("check stats: %+v", cstats)
	}

	// Table 6: battery static on 1 website.
	t6, _, ssum := a.Table6Static(0)
	if len(t6) != 1 || t6[0].Name != "Battery" || t6[0].Websites != 1 {
		t.Errorf("table 6: %+v", t6)
	}
	if ssum.Websites != 1 {
		t.Errorf("static summary: %+v", ssum)
	}

	// Delegation: only site 1 delegates (site 2's youtube has no allow).
	dsum := a.SummaryDelegation()
	if dsum.AnyDelegation != 1 || dsum.ExternalDelegation != 1 || dsum.ThirdPartyDelegation != 1 {
		t.Errorf("delegation summary: %+v", dsum)
	}

	// Table 8: autoplay and gyroscope, one delegation each.
	t8, t8Total := a.Table8DelegatedPermissions(0)
	if len(t8) != 2 || t8Total.Delegations != 2 || t8Total.Websites != 1 {
		t.Errorf("table 8: %+v %+v", t8, t8Total)
	}

	// Figure 2: 4 non-local documents (2 top + 2 youtube embeds), 2 with
	// PP at top level, 0 embedded.
	ad := a.Figure2Adoption()
	if ad.Documents != 4 || ad.PPTopLevel != 2 || ad.PPEmbedded != 0 {
		t.Errorf("adoption: %+v", ad)
	}

	// Table 9: only site 1's header parses → camera Disable,
	// geolocation Self.
	t9, t9Total, hstats := a.Table9HeaderDirectives(0)
	if hstats.HeaderWebsites != 2 || hstats.ParsedWebsites != 1 {
		t.Errorf("header stats: %+v", hstats)
	}
	if len(t9) != 2 || t9Total.Websites != 1 {
		t.Errorf("table 9: %+v", t9)
	}

	// Misconfigurations: one syntax-invalid frame.
	mis := a.Misconfigurations()
	if mis.FramesWithHeader != 2 || mis.SyntaxErrorFrames != 1 || mis.SyntaxErrorTopLevel != 1 {
		t.Errorf("misconfig: %+v", mis)
	}

	// Over-permission: youtube delegated gyroscope (unused; autoplay is
	// used). 2 inclusions, 1 delegated = 50% ≥ 5%; MinInclusions must
	// accept 2.
	over, affected := a.OverPermissioned(OverPermissionConfig{Threshold: 0.05, MinInclusions: 2}, 0)
	if len(over) != 1 || over[0].Site != "youtube.com" ||
		len(over[0].UnusedPermissions) != 1 || over[0].UnusedPermissions[0] != "gyroscope" {
		t.Errorf("over-permission: %+v", over)
	}
	if affected != 1 {
		t.Errorf("affected: %d", affected)
	}

	// JSON renders.
	out, err := a.JSON(10)
	if err != nil || len(out) < 200 {
		t.Errorf("JSON: %v, %d bytes", err, len(out))
	}
}
