package analysis

import (
	"encoding/json"

	"permodyssey/internal/policy"
	"permodyssey/internal/store"
)

// ReportData is the machine-readable form of every table and figure —
// the open-data artifact accompanying the measurement (the paper
// commits to making results publicly available, criterion C15).
type ReportData struct {
	Websites     int                        `json:"websites"`
	TotalRecords int                        `json:"total_records"`
	Failures     map[store.FailureClass]int `json:"failures"`
	Retries      RetryStats                 `json:"retry_outcomes"`
	Frames       FrameStats                 `json:"frames"`
	Table3       []SiteCount                `json:"table3_top_embeds"`
	Table3Total  int                        `json:"table3_total_any_site"`
	Table4       []UsageRow                 `json:"table4_invocations"`
	Table4Total  UsageRow                   `json:"table4_total"`
	Usage        UsageSummary               `json:"usage_summary"`
	Table5       []CheckRow                 `json:"table5_status_checks"`
	Table5Total  CheckRow                   `json:"table5_total"`
	Checks       CheckStats                 `json:"check_stats"`
	Table6       []StaticRow                `json:"table6_static"`
	Table6Total  StaticRow                  `json:"table6_total"`
	Static       StaticSummary              `json:"static_summary"`
	Hybrid       HybridSummary              `json:"hybrid_summary"`
	Delegation   DelegationSummary          `json:"delegation_summary"`
	Table7       []SiteCount                `json:"table7_delegated_embeds"`
	Table7Total  int                        `json:"table7_total_any_site"`
	Table8       []DelegatedPermissionRow   `json:"table8_delegated_permissions"`
	Table8Total  DelegatedPermissionRow     `json:"table8_total"`
	Directives   DirectiveShares            `json:"delegation_directives"`
	Adoption     AdoptionStats              `json:"figure2_adoption"`
	Table9       []DirectiveBreadthRow      `json:"table9_header_directives"`
	Table9Total  DirectiveBreadthRow        `json:"table9_total"`
	HeaderStats  HeaderContentStats         `json:"header_content"`
	Misconfig    MisconfigStats             `json:"misconfigurations"`
	Table10      []OverPermissionRow        `json:"table10_overpermissioned"`
	Table10Total int                        `json:"table10_total_affected"`
	Wildcards    []WildcardRisk             `json:"wildcard_risks"`
	Nested       NestedDelegationStats      `json:"nested_delegations"`
	Prevalence   []PrevalenceTier           `json:"delegated_embed_prevalence"`
	ReportOnlyH  ReportOnlyStats            `json:"report_only"`
	IssueKinds   map[policy.IssueKind]int   `json:"issue_kinds"`
	Purposes     []PurposeRow               `json:"delegation_purposes"`
	Exposure     LocalSchemeExposure        `json:"local_scheme_exposure"`
	EmbeddedHdr  EmbeddedHeaderStats        `json:"embedded_headers"`
	InternalGain InternalPageGain           `json:"internal_page_gain"`
}

// ReportData computes every table into one structure.
func (a *Analysis) ReportData(topN int) ReportData {
	d := ReportData{
		Websites:     a.Websites(),
		TotalRecords: a.TotalRecords(),
		Failures:     a.FailureTaxonomy(),
		Retries:      a.RetryOutcomes(),
		Frames:       a.Frames(),
	}
	d.Table3, d.Table3Total = a.Table3TopEmbeds(topN)
	d.Table4, d.Table4Total, d.Usage = a.Table4Invocations(topN)
	d.Table5, d.Table5Total, d.Checks = a.Table5StatusChecks(topN)
	d.Table6, d.Table6Total, d.Static = a.Table6Static(topN)
	d.Hybrid = a.SummaryHybrid()
	d.Delegation = a.SummaryDelegation()
	d.Table7, d.Table7Total = a.Table7DelegatedEmbeds(topN)
	d.Table8, d.Table8Total = a.Table8DelegatedPermissions(topN)
	d.Directives = a.DelegationDirectives()
	d.Adoption = a.Figure2Adoption()
	d.Table9, d.Table9Total, d.HeaderStats = a.Table9HeaderDirectives(topN)
	d.Misconfig = a.Misconfigurations()
	d.IssueKinds = d.Misconfig.ByKind
	d.Table10, d.Table10Total = a.OverPermissioned(DefaultOverPermissionConfig(), topN)
	d.Wildcards = a.WildcardRisks()
	d.Nested = a.NestedDelegations()
	d.Prevalence = a.DelegatedEmbedPrevalence([]int{1, 10, 50, 100})
	d.ReportOnlyH = a.ReportOnly()
	d.Purposes = a.DelegationsByPurpose()
	d.Exposure = a.SpecIssueExposure()
	d.EmbeddedHdr = a.EmbeddedHeaders(topN)
	d.InternalGain = a.InternalPages()
	return d
}

// JSON renders the report data as indented JSON.
func (a *Analysis) JSON(topN int) ([]byte, error) {
	return json.MarshalIndent(a.ReportData(topN), "", "  ")
}
