package analysis

import (
	"sort"
	"strings"

	"permodyssey/internal/browser"
	"permodyssey/internal/policy"
)

// Purpose is the §4.2.1 grouping of embedded documents by the
// permissions they are delegated: "permission delegations often exhibit
// clear grouping patterns".
type Purpose string

const (
	PurposeAds       Purpose = "Ads-Related"
	PurposeMedia     Purpose = "Social Media and Multimedia"
	PurposeSupport   Purpose = "Customer Support"
	PurposePayment   Purpose = "Payment-Related"
	PurposeSession   Purpose = "Session-Related"
	PurposeOther     Purpose = "Others"
	PurposeMixed     Purpose = "Mixed"
	PurposeUngrouped Purpose = "Ungrouped"
)

// purposeSignatures maps marker permissions to purposes, following the
// paper's own bullets.
var purposeSignatures = []struct {
	purpose Purpose
	markers []string
}{
	{PurposeAds, []string{"attribution-reporting", "join-ad-interest-group", "run-ad-auction", "browsing-topics", "interest-cohort"}},
	{PurposeSupport, []string{"display-capture"}}, // camera/mic handled below
	{PurposePayment, []string{"payment"}},
	{PurposeSession, []string{"identity-credentials-get", "otp-credentials"}},
	{PurposeMedia, []string{"autoplay", "encrypted-media", "picture-in-picture", "accelerometer", "gyroscope", "web-share", "clipboard-write", "fullscreen"}},
	{PurposeOther, []string{"cross-origin-isolated", "private-state-token-issuance", "storage-access"}},
}

// ClassifyPurpose derives the purpose of a delegation template from its
// permissions, reproducing the paper's manual grouping. Camera +
// microphone together indicate conferencing/customer-support; templates
// matching several groups (the WixApps case) are Mixed.
func ClassifyPurpose(perms []string) Purpose {
	set := map[string]bool{}
	for _, p := range perms {
		set[strings.ToLower(p)] = true
	}
	var hits []Purpose
	seen := map[Purpose]bool{}
	add := func(p Purpose) {
		if !seen[p] {
			seen[p] = true
			hits = append(hits, p)
		}
	}
	if set["camera"] && set["microphone"] {
		add(PurposeSupport)
	}
	for _, sig := range purposeSignatures {
		for _, m := range sig.markers {
			if set[m] {
				add(sig.purpose)
				break
			}
		}
	}
	switch len(hits) {
	case 0:
		return PurposeUngrouped
	case 1:
		return hits[0]
	case 2:
		// Media markers ride along with most templates (fullscreen,
		// clipboard-write); a single extra specific group dominates.
		if hits[0] == PurposeMedia {
			return hits[1]
		}
		if hits[1] == PurposeMedia {
			return hits[0]
		}
		return PurposeMixed
	default:
		return PurposeMixed
	}
}

// PurposeRow aggregates delegated embeds of one purpose.
type PurposeRow struct {
	Purpose  Purpose
	Embeds   int // distinct embedded sites
	Websites int // websites delegating to them
}

// DelegationsByPurpose groups delegated external embeds by the §4.2.1
// purpose taxonomy.
func (a *Analysis) DelegationsByPurpose() []PurposeRow {
	type cell struct {
		embeds   map[string]bool
		websites map[int]bool
	}
	byPurpose := map[Purpose]*cell{}
	for _, rec := range a.recs {
		topSite := rec.Page.TopFrame().Site
		for _, f := range rec.Page.EmbeddedFrames() {
			if f.Depth != 1 || f.LocalScheme || f.Site == "" || f.Site == topSite || !f.Element.HasAllow {
				continue
			}
			p, _ := policy.ParseAllowAttr(f.Element.Allow)
			var perms []string
			for _, d := range p.Directives {
				if !d.Allowlist.None() {
					perms = append(perms, d.Feature)
				}
			}
			if len(perms) == 0 {
				continue
			}
			purpose := ClassifyPurpose(perms)
			c, ok := byPurpose[purpose]
			if !ok {
				c = &cell{embeds: map[string]bool{}, websites: map[int]bool{}}
				byPurpose[purpose] = c
			}
			c.embeds[f.Site] = true
			c.websites[rec.Rank] = true
		}
	}
	out := make([]PurposeRow, 0, len(byPurpose))
	for p, c := range byPurpose {
		out = append(out, PurposeRow{Purpose: p, Embeds: len(c.embeds), Websites: len(c.websites)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Websites != out[j].Websites {
			return out[i].Websites > out[j].Websites
		}
		return out[i].Purpose < out[j].Purpose
	})
	return out
}

// LocalSchemeExposure estimates how many measured websites satisfy the
// §6.2 exploitability preconditions for the local-scheme bypass: a
// valid top-level header restricting a powerful permission to self
// (the "second most common" configuration), combined with a CSP that
// does not govern frames (or no CSP at all) — so an HTML injection
// could introduce the local-scheme intermediary.
type LocalSchemeExposure struct {
	// SelfOnlyPowerful: websites whose header grants some powerful
	// permission exactly 'self'.
	SelfOnlyPowerful int
	// Exposed of those lack a frame-governing CSP directive.
	Exposed int
}

// SpecIssueExposure computes the §6.2 exposure estimate.
func (a *Analysis) SpecIssueExposure() LocalSchemeExposure {
	var s LocalSchemeExposure
	for _, rec := range a.recs {
		top := rec.Page.TopFrame()
		if !top.HasPermissionsPolicy || !top.HeaderValid {
			continue
		}
		p, _, err := policy.ParsePermissionsPolicy(top.PermissionsPolicyRaw)
		if err != nil {
			continue
		}
		selfPowerful := false
		for _, d := range p.Directives {
			if !isPowerful(d.Feature) {
				continue
			}
			if d.Allowlist.Self && !d.Allowlist.All && len(d.Allowlist.Origins) == 0 {
				selfPowerful = true
				break
			}
		}
		if !selfPowerful {
			continue
		}
		s.SelfOnlyPowerful++
		// Exposed when the CSP would let an injected data: iframe load
		// (no governing directive, or one not admitting data:).
		if browser.ParseCSP(top.CSPRaw).AllowsFrame("data:text/html,x") {
			s.Exposed++
		}
	}
	return s
}
