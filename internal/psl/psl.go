// Package psl implements a minimal public-suffix list and the matching
// algorithm defined by publicsuffix.org, sufficient to compute the
// registrable domain (eTLD+1) of a host. The "site" of two origins — the
// granularity at which the paper distinguishes first-party from
// third-party scripts and frames — is their registrable domain.
//
// The embedded list is a small, curated subset of the public-suffix list:
// the generic TLDs and country suffixes that appear in the synthetic web
// plus the usual multi-label suffixes (co.uk, com.au, github.io, ...).
// The matching algorithm itself is complete: normal rules, wildcard rules
// ("*.ck") and exception rules ("!www.ck") are all supported, and unknown
// TLDs fall back to the implicit "*" rule exactly as the specification
// requires.
package psl

import (
	"strings"
)

// List is a compiled public-suffix list. The zero value is not useful;
// construct one with NewList or use the package-level Default list.
type List struct {
	rules map[string]ruleKind
}

type ruleKind uint8

const (
	ruleNormal ruleKind = iota
	ruleWildcard
	ruleException
)

// defaultRules is the embedded rule set. One rule per line, using the
// public-suffix list syntax ("*." prefix for wildcard, "!" for exception).
var defaultRules = []string{
	// Generic TLDs.
	"com", "org", "net", "edu", "gov", "mil", "int", "info", "biz",
	"io", "ai", "app", "dev", "co", "me", "tv", "cc", "ws", "xyz",
	"online", "site", "shop", "store", "blog", "cloud", "page", "live",
	"news", "media", "agency", "digital", "studio", "tech", "world",
	// Country TLDs that appear bare.
	"de", "fr", "es", "it", "nl", "pl", "ru", "cz", "at", "ch", "be",
	"se", "no", "fi", "dk", "pt", "gr", "ie", "hu", "ro", "bg", "sk",
	"us", "ca", "mx", "br", "ar", "cl", "pe", "jp", "cn", "kr", "in",
	"id", "th", "vn", "my", "sg", "ph", "tr", "il", "sa", "ae", "za",
	"ng", "eg", "ke", "ua", "by", "kz", "uk", "au", "nz", "localhost",
	"test", "invalid", "example", "local",
	// Multi-label public suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
	"com.au", "net.au", "org.au", "edu.au", "gov.au",
	"co.nz", "org.nz", "net.nz",
	"co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
	"com.br", "net.br", "org.br", "gov.br",
	"com.cn", "net.cn", "org.cn", "gov.cn",
	"co.in", "net.in", "org.in", "firm.in", "gen.in",
	"co.kr", "or.kr", "ne.kr",
	"com.mx", "org.mx", "net.mx",
	"com.ar", "com.tr", "com.sg", "com.my", "com.ph", "com.vn",
	"co.za", "org.za", "net.za", "co.il", "org.il",
	"com.sa", "com.eg", "com.ua", "com.ng",
	// Private-domain suffixes relevant for widget hosting.
	"github.io", "gitlab.io", "netlify.app", "vercel.app",
	"web.app", "firebaseapp.com", "appspot.com", "herokuapp.com",
	"cloudfront.net", "azurewebsites.net", "pages.dev", "workers.dev",
	"blogspot.com", "wordpress.com", "tumblr.com", "wixsite.com",
	"s3.amazonaws.com", "fastly.net", "akamaized.net",
	// Wildcard and exception rules (exercise the full algorithm).
	"*.ck", "!www.ck",
	"*.bd", "*.er", "*.fk", "!city.kobe.jp", "*.kobe.jp",
}

// Default is the list compiled from the embedded rule set.
var Default = NewList(defaultRules)

// NewList compiles rules (public-suffix list syntax) into a List.
// Rules are lower-cased; empty rules are ignored.
func NewList(rules []string) *List {
	l := &List{rules: make(map[string]ruleKind, len(rules))}
	for _, r := range rules {
		r = strings.ToLower(strings.TrimSpace(r))
		if r == "" {
			continue
		}
		switch {
		case strings.HasPrefix(r, "!"):
			l.rules[r[1:]] = ruleException
		case strings.HasPrefix(r, "*."):
			l.rules[r[2:]] = ruleWildcard
		default:
			l.rules[r] = ruleNormal
		}
	}
	return l
}

// PublicSuffix returns the public suffix of host and whether an explicit
// rule (as opposed to the implicit "*" fallback) matched. The host must
// already be a bare lower-case hostname (no port, no trailing dot).
func (l *List) PublicSuffix(host string) (suffix string, explicit bool) {
	host = normalizeHost(host)
	if host == "" {
		return "", false
	}
	labels := strings.Split(host, ".")
	// Find the longest matching rule, honoring exceptions: an exception
	// rule's suffix is one label shorter than the exception itself.
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		switch l.rules[candidate] {
		case ruleException:
			// The public suffix is the candidate minus its first label.
			if dot := strings.IndexByte(candidate, '.'); dot >= 0 {
				return candidate[dot+1:], true
			}
			return candidate, true
		}
	}
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		if kind, ok := l.rules[candidate]; ok {
			switch kind {
			case ruleNormal:
				return candidate, true
			case ruleWildcard:
				// "*.foo" makes "<label>.foo" a public suffix. The wildcard
				// matches only if there is a label before the rule suffix.
				if i > 0 {
					return strings.Join(labels[i-1:], "."), true
				}
				return candidate, true
			}
		}
	}
	// Implicit "*" rule: the rightmost label is the public suffix.
	return labels[len(labels)-1], false
}

// RegistrableDomain returns the eTLD+1 of host, or "" when the host is
// itself a public suffix (or empty). IP-address literals are returned
// unchanged: an IP has no registrable domain hierarchy, so the address is
// its own site.
func (l *List) RegistrableDomain(host string) string {
	host = normalizeHost(host)
	if host == "" {
		return ""
	}
	if isIPLiteral(host) {
		return host
	}
	suffix, _ := l.PublicSuffix(host)
	if host == suffix {
		return ""
	}
	// The registrable domain is the suffix plus the one preceding label.
	rest := strings.TrimSuffix(host, "."+suffix)
	if rest == host {
		return ""
	}
	if dot := strings.LastIndexByte(rest, '.'); dot >= 0 {
		rest = rest[dot+1:]
	}
	if rest == "" {
		return ""
	}
	return rest + "." + suffix
}

// SameSite reports whether the two hosts share a registrable domain.
// Hosts that are themselves public suffixes are never same-site with
// anything (not even themselves), mirroring browser behaviour for
// schemeless site comparisons.
func (l *List) SameSite(a, b string) bool {
	ra := l.RegistrableDomain(a)
	rb := l.RegistrableDomain(b)
	return ra != "" && ra == rb
}

func normalizeHost(host string) string {
	host = strings.ToLower(strings.TrimSpace(host))
	host = strings.TrimSuffix(host, ".")
	return host
}

// isIPLiteral reports whether host looks like an IPv4 or IPv6 literal.
// We avoid net.ParseIP to keep this package dependency-free and because
// bracketed IPv6 literals arrive already stripped of brackets.
func isIPLiteral(host string) bool {
	if strings.ContainsRune(host, ':') {
		return true // only IPv6 literals contain colons at this point
	}
	parts := strings.Split(host, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if len(p) == 0 || len(p) > 3 {
			return false
		}
		n := 0
		for _, c := range p {
			if c < '0' || c > '9' {
				return false
			}
			n = n*10 + int(c-'0')
		}
		if n > 255 {
			return false
		}
	}
	return true
}
