package psl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffix(t *testing.T) {
	tests := []struct {
		host     string
		suffix   string
		explicit bool
	}{
		{"example.com", "com", true},
		{"www.example.com", "com", true},
		{"example.co.uk", "co.uk", true},
		{"sub.example.co.uk", "co.uk", true},
		{"example.github.io", "github.io", true},
		{"foo.appspot.com", "appspot.com", true},
		{"com", "com", true},
		{"example.unknown-tld", "unknown-tld", false},
		{"a.b.example.unknowntld", "unknowntld", false},
		// Wildcard rule *.ck: any single label under ck is a suffix.
		{"foo.ck", "foo.ck", true},
		{"bar.foo.ck", "foo.ck", true},
		// Exception rule !www.ck: www.ck is registrable; suffix is ck.
		{"www.ck", "ck", true},
		{"sub.www.ck", "ck", true},
		// Kobe: *.kobe.jp with exception !city.kobe.jp.
		{"x.kobe.jp", "x.kobe.jp", true},
		{"a.x.kobe.jp", "x.kobe.jp", true},
		{"city.kobe.jp", "kobe.jp", true},
		{"EXAMPLE.COM", "com", true},
		{"example.com.", "com", true},
	}
	for _, tt := range tests {
		suffix, explicit := Default.PublicSuffix(tt.host)
		if suffix != tt.suffix || explicit != tt.explicit {
			t.Errorf("PublicSuffix(%q) = %q, %v; want %q, %v",
				tt.host, suffix, explicit, tt.suffix, tt.explicit)
		}
	}
}

func TestRegistrableDomain(t *testing.T) {
	tests := []struct {
		host, want string
	}{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.c.example.com", "example.com"},
		{"example.co.uk", "example.co.uk"},
		{"deep.sub.example.co.uk", "example.co.uk"},
		{"widget.github.io", "widget.github.io"},
		{"a.widget.github.io", "widget.github.io"},
		{"com", ""},
		{"co.uk", ""},
		{"github.io", ""},
		{"", ""},
		{"www.ck", "www.ck"},
		{"sub.www.ck", "www.ck"},
		{"site.foo.ck", "site.foo.ck"},
		{"127.0.0.1", "127.0.0.1"},
		{"::1", "::1"},
		{"256.1.1.1", ""}, // not an IP; "1" is implicit suffix; "1.1" reg dom? see below
	}
	for _, tt := range tests {
		if tt.host == "256.1.1.1" {
			// Not an IPv4 literal (256 > 255): treated as a hostname with
			// implicit suffix "1", so the registrable domain is "1.1".
			if got := Default.RegistrableDomain(tt.host); got != "1.1" {
				t.Errorf("RegistrableDomain(%q) = %q; want %q", tt.host, got, "1.1")
			}
			continue
		}
		if got := Default.RegistrableDomain(tt.host); got != tt.want {
			t.Errorf("RegistrableDomain(%q) = %q; want %q", tt.host, got, tt.want)
		}
	}
}

func TestSameSite(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"example.com", "example.com", true},
		{"www.example.com", "example.com", true},
		{"a.example.com", "b.example.com", true},
		{"example.com", "example.org", false},
		{"example.co.uk", "example.com", false},
		{"a.example.co.uk", "b.example.co.uk", true},
		{"alpha.github.io", "beta.github.io", false}, // distinct private suffix sites
		{"com", "com", false},                        // bare suffix never same-site
		{"", "example.com", false},
	}
	for _, tt := range tests {
		if got := Default.SameSite(tt.a, tt.b); got != tt.want {
			t.Errorf("SameSite(%q, %q) = %v; want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestNewListCustomRules(t *testing.T) {
	l := NewList([]string{"zz", "corp.zz", " SPACED.ZZ ", ""})
	if got := l.RegistrableDomain("a.corp.zz"); got != "a.corp.zz" {
		t.Errorf("custom rule: got %q", got)
	}
	if got := l.RegistrableDomain("a.spaced.zz"); got != "a.spaced.zz" {
		t.Errorf("normalized custom rule: got %q", got)
	}
	if got := l.RegistrableDomain("b.other.zz"); got != "other.zz" {
		t.Errorf("fallback to zz: got %q", got)
	}
}

// Property: the registrable domain, when non-empty, is always a suffix of
// the input host and has exactly one more label than its public suffix.
func TestRegistrableDomainProperties(t *testing.T) {
	hosts := []string{
		"example.com", "www.example.com", "a.b.c.d.e.co.uk",
		"x.github.io", "deep.x.github.io", "foo.bar.unknowable",
		"site.foo.ck", "city.kobe.jp", "q.city.kobe.jp",
	}
	for _, h := range hosts {
		rd := Default.RegistrableDomain(h)
		if rd == "" {
			t.Fatalf("expected registrable domain for %q", h)
		}
		if h != rd && !strings.HasSuffix(h, "."+rd) {
			t.Errorf("RegistrableDomain(%q) = %q is not a dot-suffix", h, rd)
		}
		suffix, _ := Default.PublicSuffix(h)
		want := strings.Count(suffix, ".") + 1
		if got := strings.Count(rd, "."); got != want {
			t.Errorf("RegistrableDomain(%q) = %q: %d dots, want %d", h, rd, got, want)
		}
	}
}

// Property (quick): PublicSuffix output is always a suffix of the
// normalized host, and SameSite is symmetric.
func TestQuickProperties(t *testing.T) {
	labels := []string{"a", "bb", "www", "example", "com", "co", "uk", "io", "ck", "github"}
	genHost := func(n1, n2, n3 uint8) string {
		parts := []string{
			labels[int(n1)%len(labels)],
			labels[int(n2)%len(labels)],
			labels[int(n3)%len(labels)],
		}
		return strings.Join(parts[:1+int(n1)%3], ".")
	}
	suffixProp := func(n1, n2, n3 uint8) bool {
		h := genHost(n1, n2, n3)
		s, _ := Default.PublicSuffix(h)
		return h == s || strings.HasSuffix(h, "."+s)
	}
	if err := quick.Check(suffixProp, nil); err != nil {
		t.Error(err)
	}
	symProp := func(a1, a2, a3, b1, b2, b3 uint8) bool {
		a, b := genHost(a1, a2, a3), genHost(b1, b2, b3)
		return Default.SameSite(a, b) == Default.SameSite(b, a)
	}
	if err := quick.Check(symProp, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRegistrableDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Default.RegistrableDomain("deep.sub.example.co.uk")
	}
}
