package browser

import (
	"context"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"permodyssey/internal/lru"
)

// CacheStats is a point-in-time snapshot of CachingFetcher counters.
type CacheStats struct {
	// Hits are lookups answered from the in-memory cache without
	// touching the disk archive or the inner fetcher.
	Hits uint64 `json:"hits"`
	// Misses are lookups that fell through the in-memory cache (to the
	// disk archive when one is attached, else to the inner fetcher).
	Misses uint64 `json:"misses"`
	// Coalesced are lookups that joined an in-flight fetch of the same
	// URL and shared its result (singleflight de-duplication).
	Coalesced uint64 `json:"coalesced"`
	// Bypassed are lookups the Cacheable policy routed past the
	// in-memory cache (per-site documents); they still consult the disk
	// archive when one is attached.
	Bypassed uint64 `json:"bypassed"`
	// Errors are fetches that failed; failures are never cached in
	// memory.
	Errors uint64 `json:"errors"`
	// Evictions are entries dropped to keep the cache under its entry
	// or byte bound; BytesEvicted is the summed body bytes they were
	// charged for.
	Evictions    uint64 `json:"evictions"`
	BytesEvicted uint64 `json:"bytes_evicted"`
	// CachedBytes is the body bytes currently charged to live entries.
	// Each entry is charged its full body length even when interning
	// shares the backing storage, so this is an upper bound on body
	// memory (DedupedBytes tracks the sharing).
	CachedBytes uint64 `json:"cached_bytes"`
	// Entries is the number of cached URLs; UniqueBodies the number of
	// distinct response bodies behind them (content addressing shares
	// identical bodies served under different URLs).
	Entries      uint64 `json:"entries"`
	UniqueBodies uint64 `json:"unique_bodies"`
	// DedupedBytes is memory saved by body interning: bytes of cached
	// bodies that alias an already-stored identical body.
	DedupedBytes uint64 `json:"deduped_bytes"`
	// NetworkFetches counts calls that reached the inner fetcher — the
	// crawl's true network cost after both cache tiers. Offline replay
	// must leave it at zero.
	NetworkFetches uint64 `json:"network_fetches"`
	// Disk snapshots the persistent archive tier; zero when none is
	// attached.
	Disk ArchiveStats `json:"disk"`
}

// inflightFetch is one in-progress fetch other callers can wait on.
type inflightFetch struct {
	done chan struct{}
	resp *Response
	err  error
}

// cacheEntry pairs a cached response with its body's content hash so
// eviction can release the interned body.
type cacheEntry struct {
	resp *Response
	sum  [sha256.Size]byte
}

// internedBody is one content-addressed body with its reference count
// across cache entries.
type internedBody struct {
	body string
	refs int
}

// CachingFetcher wraps a Fetcher with a concurrency-safe, URL-keyed
// response cache. The crawl's hot path re-fetches the same Zipf-popular
// third-party widget documents and CDN scripts for thousands of sites;
// caching them collapses that to one fetch each. Keys are full URLs, so
// per-site documents would be cached per site anyway — but since each
// site is visited exactly once, the Cacheable policy lets the caller
// bypass the cache for them entirely and keep memory bounded by the
// shared-resource population.
//
// Concurrent fetches of the same URL are de-duplicated: one caller
// performs the fetch, the rest wait and share the result. Failures are
// never cached and never shared — a waiter whose leader failed (for
// example to the leader's own per-site deadline) re-fetches under its
// own context. Bodies are interned by content hash, so identical bodies
// served under different URLs are stored once.
//
// The cache is bounded two ways, both LRU-evicted (each 0 = off): a
// max entry count and a max total of body bytes, so that neither many
// small entries nor a few huge bodies can grow it without limit on a
// multi-million-site crawl. Each entry is charged its full body length
// even when interning shares the storage — a conservative bound.
// Evicting the last entry referencing an interned body releases the
// body too.
//
// Cached *Response values are shared between callers and must be
// treated as read-only, like MapFetcher entries.
type CachingFetcher struct {
	Inner Fetcher
	// Cacheable decides whether a URL participates in the cache; nil
	// caches everything. The measurement pipeline passes a policy that
	// bypasses the per-site document hosts and caches everything else
	// (the cross-origin widget and CDN resources shared between sites).
	Cacheable func(rawURL string) bool
	// Disk, when non-nil, is a persistent read-through/write-through
	// tier consulted between the in-memory cache and the inner fetcher.
	// Unlike the in-memory tier it also serves Cacheable-bypassed URLs:
	// the per-site documents must be archived for offline replay, and
	// on disk they cost no crawl memory. In strict offline mode the
	// archive's Load returns an error on every miss and the inner
	// fetcher is never called.
	Disk ResponseArchive

	mu       sync.Mutex
	entries  *lru.Cache[string, cacheEntry]
	bodies   map[[sha256.Size]byte]*internedBody
	inflight map[string]*inflightFetch

	hits, misses, coalesced, bypassed, errors atomic.Uint64
	evictions                                 atomic.Uint64
	bytesEvicted                              atomic.Uint64
	dedupedBytes                              atomic.Uint64
	networkFetches                            atomic.Uint64
}

// NewCachingFetcher wraps inner with an empty, unbounded cache; use
// NewBoundedCachingFetcher to cap it.
func NewCachingFetcher(inner Fetcher) *CachingFetcher {
	return NewBoundedCachingFetcher(inner, 0)
}

// NewBoundedCachingFetcher wraps inner with a cache holding at most
// maxEntries URLs (<= 0 = unbounded), evicted least-recently-used.
func NewBoundedCachingFetcher(inner Fetcher, maxEntries int) *CachingFetcher {
	return NewByteBoundedCachingFetcher(inner, maxEntries, 0)
}

// NewByteBoundedCachingFetcher wraps inner with a cache bounded both by
// entry count and by total cached body bytes (each <= 0 = that bound
// off), evicted least-recently-used. A single body larger than maxBytes
// is served but never retained.
func NewByteBoundedCachingFetcher(inner Fetcher, maxEntries int, maxBytes int64) *CachingFetcher {
	return &CachingFetcher{
		Inner:    inner,
		entries:  lru.NewWithBytes[string, cacheEntry](maxEntries, maxBytes),
		bodies:   map[[sha256.Size]byte]*internedBody{},
		inflight: map[string]*inflightFetch{},
	}
}

// Fetch implements Fetcher.
func (c *CachingFetcher) Fetch(ctx context.Context, rawURL string) (*Response, error) {
	if c.Cacheable != nil && !c.Cacheable(rawURL) {
		c.bypassed.Add(1)
		return c.fetchThrough(ctx, rawURL)
	}
	for {
		c.mu.Lock()
		if e, ok := c.entries.Get(rawURL); ok {
			c.mu.Unlock()
			c.hits.Add(1)
			return e.resp, nil
		}
		if fl, ok := c.inflight[rawURL]; ok {
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fl.err == nil {
				c.coalesced.Add(1)
				return fl.resp, nil
			}
			// The leader failed — possibly to its own caller's deadline,
			// which says nothing about ours. Loop and try again (the entry
			// may have appeared meanwhile, or we become the new leader).
			continue
		}
		fl := &inflightFetch{done: make(chan struct{})}
		c.inflight[rawURL] = fl
		c.mu.Unlock()

		c.misses.Add(1)
		resp, err := c.fetchThrough(ctx, rawURL)

		c.mu.Lock()
		delete(c.inflight, rawURL)
		if err == nil {
			var sum [sha256.Size]byte
			resp.Body, sum = c.internLocked(resp.Body)
			old, replaced, evs := c.entries.AddWithSize(rawURL, cacheEntry{resp: resp, sum: sum}, int64(len(resp.Body)))
			if replaced {
				// The overwritten entry's interned body loses a reference
				// or it would never be released.
				c.releaseLocked(old.sum)
			}
			for _, ev := range evs {
				c.releaseLocked(ev.Value.sum)
				c.evictions.Add(1)
				c.bytesEvicted.Add(uint64(ev.Size))
			}
		}
		c.mu.Unlock()
		if err != nil {
			c.errors.Add(1)
		}
		fl.resp, fl.err = resp, err
		close(fl.done)
		return resp, err
	}
}

// fetchThrough consults the persistent archive tier, then the network.
// Successful network fetches are written through to the archive;
// failures are archived too (minus crawler-local conditions the archive
// filters out) so offline replay reproduces them.
func (c *CachingFetcher) fetchThrough(ctx context.Context, rawURL string) (*Response, error) {
	if c.Disk != nil {
		resp, err := c.Disk.Load(rawURL)
		if err != nil {
			return nil, err
		}
		if resp != nil {
			return resp, nil
		}
	}
	c.networkFetches.Add(1)
	resp, err := c.Inner.Fetch(ctx, rawURL)
	if c.Disk != nil {
		if err == nil {
			c.Disk.Store(rawURL, resp)
		} else {
			c.Disk.StoreFailure(rawURL, err)
		}
	}
	return resp, err
}

// internLocked returns the canonical stored copy of body and its hash,
// deduplicating identical bodies by content. Callers hold c.mu.
func (c *CachingFetcher) internLocked(body string) (string, [sha256.Size]byte) {
	sum := sha256.Sum256([]byte(body))
	if stored, ok := c.bodies[sum]; ok {
		c.dedupedBytes.Add(uint64(len(body)))
		stored.refs++
		return stored.body, sum
	}
	c.bodies[sum] = &internedBody{body: body, refs: 1}
	return body, sum
}

// releaseLocked drops one reference to an interned body, deleting it
// with the last referencing cache entry. Callers hold c.mu.
func (c *CachingFetcher) releaseLocked(sum [sha256.Size]byte) {
	if stored, ok := c.bodies[sum]; ok {
		if stored.refs--; stored.refs <= 0 {
			delete(c.bodies, sum)
		}
	}
}

// Stats snapshots the cache counters.
func (c *CachingFetcher) Stats() CacheStats {
	c.mu.Lock()
	entries, unique := uint64(c.entries.Len()), uint64(len(c.bodies))
	cachedBytes := uint64(c.entries.Bytes())
	c.mu.Unlock()
	s := CacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Coalesced:      c.coalesced.Load(),
		Bypassed:       c.bypassed.Load(),
		Errors:         c.errors.Load(),
		Evictions:      c.evictions.Load(),
		BytesEvicted:   c.bytesEvicted.Load(),
		CachedBytes:    cachedBytes,
		Entries:        entries,
		UniqueBodies:   unique,
		DedupedBytes:   c.dedupedBytes.Load(),
		NetworkFetches: c.networkFetches.Load(),
	}
	if c.Disk != nil {
		s.Disk = c.Disk.Stats()
	}
	return s
}
