// Package browser implements the miniature headless browser the
// measurement pipeline drives: it fetches documents over real HTTP,
// captures the response headers of every frame at any depth (§3.1.3),
// parses the HTML, extracts iframe attributes (§3.1.2), executes
// scripts against the instrumented Web-API surface (dynamic analysis),
// runs the static analyzer over every loaded script, triggers
// lazy-loaded iframes the way the crawler scrolls to them (§3.2), and
// optionally simulates user interaction (Appendix A.3).
package browser

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Response is a fetched document or script.
type Response struct {
	Status   int
	Header   http.Header
	Body     string
	FinalURL string // after redirects
	// BodyTruncated reports that the server offered more bytes than the
	// fetcher's MaxBodyBytes budget and Body holds only the prefix. The
	// crawler records such visits as degraded rather than failed.
	BodyTruncated bool
}

// Fetcher retrieves resources. The crawler plugs in an HTTP client
// whose dialer is pointed at the synthetic web; tests plug in maps.
type Fetcher interface {
	Fetch(ctx context.Context, rawURL string) (*Response, error)
}

// HTTPFetcher fetches over net/http.
type HTTPFetcher struct {
	Client *http.Client
	// MaxBodyBytes caps response bodies (default 4 MiB).
	MaxBodyBytes int64
	// UserAgent is sent with every request.
	UserAgent string
}

// NewHTTPFetcher builds a fetcher with sane crawl defaults.
func NewHTTPFetcher(client *http.Client) *HTTPFetcher {
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	return &HTTPFetcher{
		Client:       client,
		MaxBodyBytes: 4 << 20,
		UserAgent:    "Mozilla/5.0 (X11; Linux x86_64) Chrome/127.0.0.0 permodyssey-crawler",
	}
}

// Fetch implements Fetcher.
func (f *HTTPFetcher) Fetch(ctx context.Context, rawURL string) (*Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("User-Agent", f.UserAgent)
	resp, err := f.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	limit := f.MaxBodyBytes
	if limit <= 0 {
		limit = 4 << 20
	}
	// Read one byte past the budget so truncation is detectable rather
	// than silent.
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", rawURL, err)
	}
	truncated := int64(len(body)) > limit
	if truncated {
		body = body[:limit]
	}
	return &Response{
		Status:        resp.StatusCode,
		Header:        resp.Header,
		Body:          string(body),
		FinalURL:      resp.Request.URL.String(),
		BodyTruncated: truncated,
	}, nil
}

// MapFetcher serves canned responses; for tests and examples.
type MapFetcher map[string]*Response

// Fetch implements Fetcher.
func (m MapFetcher) Fetch(_ context.Context, rawURL string) (*Response, error) {
	if r, ok := m[rawURL]; ok {
		if r.FinalURL == "" {
			cp := *r
			cp.FinalURL = rawURL
			return &cp, nil
		}
		return r, nil
	}
	return nil, fmt.Errorf("map fetcher: no entry for %q", rawURL)
}

// resolveURL resolves ref against base, returning "" on failure.
func resolveURL(base, ref string) string {
	b, err := url.Parse(base)
	if err != nil {
		return ""
	}
	r, err := url.Parse(strings.TrimSpace(ref))
	if err != nil {
		return ""
	}
	return b.ResolveReference(r).String()
}
