package browser

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// stubArchive is an in-memory ResponseArchive for exercising the
// CachingFetcher disk tier without touching the filesystem.
type stubArchive struct {
	mu       sync.Mutex
	entries  map[string]*Response
	failures map[string]*ReplayedFailure
	offline  bool

	loads, stores, failureStores int
}

func newStubArchive() *stubArchive {
	return &stubArchive{entries: map[string]*Response{}, failures: map[string]*ReplayedFailure{}}
}

func (s *stubArchive) Load(rawURL string) (*Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	if r, ok := s.entries[rawURL]; ok {
		return r, nil
	}
	if f, ok := s.failures[rawURL]; ok && s.offline {
		return nil, f
	}
	if s.offline {
		return nil, fmt.Errorf("%w: %s", ErrNotArchived, rawURL)
	}
	return nil, nil
}

func (s *stubArchive) Store(rawURL string, resp *Response) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stores++
	s.entries[rawURL] = resp
}

func (s *stubArchive) StoreFailure(rawURL string, fetchErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failureStores++
	s.failures[rawURL] = &ReplayedFailure{Class: "ephemeral", Msg: fetchErr.Error()}
}

func (s *stubArchive) Stats() ArchiveStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ArchiveStats{Entries: uint64(len(s.entries) + len(s.failures))}
}

func TestDiskTierReadThrough(t *testing.T) {
	inner := &countingFetcher{}
	c := NewCachingFetcher(inner)
	disk := newStubArchive()
	disk.entries["https://cdn.test/lib.js"] = &Response{Status: 200, Body: "archived body"}
	c.Disk = disk

	got, err := c.Fetch(context.Background(), "https://cdn.test/lib.js")
	if err != nil || got.Body != "archived body" {
		t.Fatalf("Fetch = %v, %v; want the archived response", got, err)
	}
	if inner.calls.Load() != 0 {
		t.Errorf("inner fetches = %d, want 0 (disk hit)", inner.calls.Load())
	}
	if s := c.Stats(); s.NetworkFetches != 0 {
		t.Errorf("network fetches = %d, want 0", s.NetworkFetches)
	}
	// Second fetch is an in-memory hit: the disk tier is consulted once.
	if _, err := c.Fetch(context.Background(), "https://cdn.test/lib.js"); err != nil {
		t.Fatal(err)
	}
	if disk.loads != 1 {
		t.Errorf("disk loads = %d, want 1 (memory tier above disk)", disk.loads)
	}
}

func TestDiskTierWriteThrough(t *testing.T) {
	inner := &countingFetcher{}
	c := NewCachingFetcher(inner)
	disk := newStubArchive()
	c.Disk = disk

	if _, err := c.Fetch(context.Background(), "https://cdn.test/lib.js"); err != nil {
		t.Fatal(err)
	}
	if disk.stores != 1 {
		t.Errorf("disk stores = %d, want 1", disk.stores)
	}
	if s := c.Stats(); s.NetworkFetches != 1 {
		t.Errorf("network fetches = %d, want 1", s.NetworkFetches)
	}
	// Failures are written through too, for offline failure replay.
	inner.failures = map[string]int{"https://down.test/": -1}
	if _, err := c.Fetch(context.Background(), "https://down.test/"); err == nil {
		t.Fatal("expected injected failure")
	}
	if disk.failureStores != 1 {
		t.Errorf("disk failure stores = %d, want 1", disk.failureStores)
	}
}

// TestDiskTierServesBypassedURLs: the Cacheable policy keeps per-site
// documents out of memory, but the disk tier still covers them —
// offline replay needs every resource.
func TestDiskTierServesBypassedURLs(t *testing.T) {
	inner := &countingFetcher{}
	c := NewCachingFetcher(inner)
	c.Cacheable = func(string) bool { return false }
	disk := newStubArchive()
	c.Disk = disk

	for i := 0; i < 3; i++ {
		got, err := c.Fetch(context.Background(), "https://www.site1.com/")
		if err != nil || got == nil {
			t.Fatal(err)
		}
	}
	if inner.calls.Load() != 1 {
		t.Errorf("inner fetches = %d, want 1 (first write-through, then disk hits)", inner.calls.Load())
	}
	if s := c.Stats(); s.Bypassed != 3 || s.NetworkFetches != 1 {
		t.Errorf("stats = %+v, want 3 bypassed, 1 network fetch", s)
	}
}

func TestOfflineMissSurfacesError(t *testing.T) {
	inner := &countingFetcher{}
	c := NewCachingFetcher(inner)
	disk := newStubArchive()
	disk.offline = true
	c.Disk = disk

	_, err := c.Fetch(context.Background(), "https://never.test/")
	if !errors.Is(err, ErrNotArchived) {
		t.Fatalf("offline miss error = %v, want ErrNotArchived", err)
	}
	if inner.calls.Load() != 0 {
		t.Errorf("offline miss reached the network: %d calls", inner.calls.Load())
	}
	if s := c.Stats(); s.NetworkFetches != 0 {
		t.Errorf("network fetches = %d, want 0 offline", s.NetworkFetches)
	}
}

func TestOfflineFailureReplaySurfaces(t *testing.T) {
	inner := &countingFetcher{}
	c := NewCachingFetcher(inner)
	disk := newStubArchive()
	disk.offline = true
	disk.failures["https://slow.test/"] = &ReplayedFailure{Class: "timeout", Msg: "context deadline exceeded"}
	c.Disk = disk

	_, err := c.Fetch(context.Background(), "https://slow.test/")
	var rf *ReplayedFailure
	if !errors.As(err, &rf) || rf.Class != "timeout" {
		t.Fatalf("err = %v, want the replayed timeout", err)
	}
	if inner.calls.Load() != 0 {
		t.Errorf("failure replay reached the network: %d calls", inner.calls.Load())
	}
}

// TestReplacedEntryReleasesInternedBody pins the release bookkeeping
// of the cache's replace branch: when Add overwrites an entry (the
// lru.Cache.Add replace path), the old entry's interned body must lose
// its reference, or identical re-stores would leak bodies forever.
// This drives the exact sequence Fetch's insert path runs.
func TestReplacedEntryReleasesInternedBody(t *testing.T) {
	c := NewCachingFetcher(&countingFetcher{})
	insert := func(url, body string) {
		c.mu.Lock()
		defer c.mu.Unlock()
		stored, sum := c.internLocked(body)
		old, replaced, _, ev, evicted := c.entries.Add(url, cacheEntry{resp: &Response{Body: stored}, sum: sum})
		if replaced {
			c.releaseLocked(old.sum)
		}
		if evicted {
			c.releaseLocked(ev.sum)
		}
	}
	insert("https://x.test/", "first body")
	insert("https://x.test/", "second body")
	insert("https://x.test/", "third body")

	c.mu.Lock()
	bodies, entries := len(c.bodies), c.entries.Len()
	c.mu.Unlock()
	if entries != 1 {
		t.Fatalf("entries = %d, want 1 (same URL replaced)", entries)
	}
	if bodies != 1 {
		t.Errorf("interned bodies = %d, want 1 — replaced entries leaked their bodies", bodies)
	}
}
