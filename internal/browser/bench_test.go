package browser

import (
	"context"
	"testing"
)

func BenchmarkVisitPage(b *testing.B) {
	fetcher := MapFetcher{
		"https://site.example/": page(`
			<script src="/app.js"></script>
			<script>navigator.permissions.query({name: 'notifications'});</script>
			<iframe src="https://w.example/e" allow="camera; microphone"></iframe>
			<iframe srcdoc="&lt;p&gt;banner&lt;/p&gt;"></iframe>`, nil),
		"https://site.example/app.js": {Status: 200, Body: `navigator.getBattery(); document.featurePolicy.allowedFeatures();`},
		"https://w.example/e": page(
			`<script>navigator.mediaDevices.getUserMedia({video: true});</script>`, nil),
	}
	br := New(fetcher, DefaultOptions())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := br.Visit(context.Background(), "https://site.example/"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseCSP(b *testing.B) {
	value := "default-src 'self'; script-src 'self' https://cdn.example; frame-src https://youtube.com *.trusted.example data:; object-src 'none'"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := ParseCSP(value)
		if !c.AllowsFrame("https://youtube.com/embed") {
			b.Fatal("bad parse")
		}
	}
}
