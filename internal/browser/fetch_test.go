package browser

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPFetcherMaxBodyBytes pins the truncation contract: bodies are
// capped at MaxBodyBytes without error, and the zero value falls back
// to the 4 MiB default.
func TestHTTPFetcherMaxBodyBytes(t *testing.T) {
	body := strings.Repeat("x", 1<<16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		if _, err := w.Write([]byte(body)); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	t.Run("truncates at limit", func(t *testing.T) {
		f := NewHTTPFetcher(srv.Client())
		f.MaxBodyBytes = 1024
		resp, err := f.Fetch(context.Background(), srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Body) != 1024 {
			t.Errorf("body length = %d, want 1024", len(resp.Body))
		}
		if resp.Body != body[:1024] {
			t.Error("truncated body is not a prefix of the response")
		}
	})

	t.Run("zero limit uses 4 MiB default", func(t *testing.T) {
		f := &HTTPFetcher{Client: srv.Client()}
		resp, err := f.Fetch(context.Background(), srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Body) != len(body) {
			t.Errorf("body length = %d, want %d (under the default cap)", len(resp.Body), len(body))
		}
	})

	t.Run("limit above body leaves it intact", func(t *testing.T) {
		f := NewHTTPFetcher(srv.Client())
		f.MaxBodyBytes = int64(len(body)) + 1
		resp, err := f.Fetch(context.Background(), srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Body != body {
			t.Error("body altered despite fitting under the limit")
		}
	})
}
