package browser

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"permodyssey/internal/policy"
)

func page(body string, headers map[string]string) *Response {
	h := http.Header{}
	for k, v := range headers {
		h.Set(k, v)
	}
	return &Response{Status: 200, Header: h, Body: body}
}

func TestVisitCollectsFramesHeadersScripts(t *testing.T) {
	fetcher := MapFetcher{
		"https://site.example/": page(`
			<html><head>
			<script src="/app.js"></script>
			<script>navigator.permissions.query({name: 'notifications'});</script>
			</head><body>
			<iframe src="https://widget.example/embed" allow="camera; microphone"></iframe>
			</body></html>`,
			map[string]string{"Permissions-Policy": "geolocation=(self)"}),
		"https://site.example/app.js": {Status: 200, Body: `navigator.getBattery();`},
		"https://widget.example/embed": page(
			`<script>navigator.mediaDevices.getUserMedia({video: true});</script>`,
			map[string]string{"Permissions-Policy": "interest-cohort=()"}),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 2 {
		t.Fatalf("frames: %d", len(res.Frames))
	}
	top := res.TopFrame()
	if !top.TopLevel || top.Origin != "https://site.example" || top.Site != "site.example" {
		t.Errorf("top frame: %+v", top)
	}
	if !top.HasPermissionsPolicy || !top.HeaderValid {
		t.Errorf("top header: %+v", top)
	}
	// Dynamic: battery (external 3P-located script... same-site here) and
	// the notifications query.
	var apis []string
	for _, inv := range top.Invocations {
		apis = append(apis, inv.API)
	}
	joined := strings.Join(apis, ",")
	if !strings.Contains(joined, "navigator.getBattery") || !strings.Contains(joined, "navigator.permissions.query") {
		t.Errorf("top invocations: %v", apis)
	}
	// Static findings should include battery.
	perms := map[string]bool{}
	for _, f := range top.StaticFindings {
		perms[f.Permission] = true
	}
	if !perms["battery"] {
		t.Errorf("static findings: %+v", top.StaticFindings)
	}
	// Embedded frame: delegated camera works; its element attrs kept.
	emb := res.Frames[1]
	if emb.TopLevel || emb.Depth != 1 || emb.Element.Allow != "camera; microphone" {
		t.Errorf("embedded frame: %+v", emb)
	}
	if len(emb.Invocations) != 1 || emb.Invocations[0].Blocked {
		t.Errorf("delegated getUserMedia must succeed: %+v", emb.Invocations)
	}
	if !emb.HasPermissionsPolicy {
		t.Error("embedded header must be captured (§3.1.3: every frame)")
	}
}

func TestUndelegatedIframeBlocked(t *testing.T) {
	fetcher := MapFetcher{
		"https://site.example/": page(`<iframe src="https://widget.example/e"></iframe>`, nil),
		"https://widget.example/e": page(
			`<script>navigator.mediaDevices.getUserMedia({video: true}).catch(function(){});</script>`, nil),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	emb := res.Frames[1]
	if len(emb.Invocations) != 1 || !emb.Invocations[0].Blocked {
		t.Errorf("undelegated camera must be blocked: %+v", emb.Invocations)
	}
}

func TestHeaderSyntaxErrorDropsPolicy(t *testing.T) {
	// Feature-Policy syntax inside Permissions-Policy: header dropped,
	// defaults apply — so camera still works at top level.
	fetcher := MapFetcher{
		"https://site.example/": page(
			`<script>navigator.mediaDevices.getUserMedia({video:true});</script>`,
			map[string]string{"Permissions-Policy": "camera 'none'"}),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopFrame()
	if top.HeaderValid {
		t.Error("header must be invalid")
	}
	if len(top.HeaderIssues) == 0 || top.HeaderIssues[0].Kind != policy.IssueFeaturePolicySyntax {
		t.Errorf("issues: %v", top.HeaderIssues)
	}
	if len(top.Invocations) != 1 || top.Invocations[0].Blocked {
		t.Error("with the header dropped, the default allowlist applies and camera works")
	}
}

func TestFeaturePolicyFallback(t *testing.T) {
	// A Feature-Policy header (no Permissions-Policy) is still enforced.
	fetcher := MapFetcher{
		"https://site.example/": page(
			`<script>navigator.mediaDevices.getUserMedia({video:true}).catch(function(){});</script>`,
			map[string]string{"Feature-Policy": "camera 'none'"}),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopFrame()
	if !top.HasFeaturePolicy || top.HasPermissionsPolicy {
		t.Errorf("headers: %+v", top)
	}
	if len(top.Invocations) != 1 || !top.Invocations[0].Blocked {
		t.Error("Feature-Policy camera 'none' must block")
	}
}

func TestLazyIframeScrolling(t *testing.T) {
	fetcher := MapFetcher{
		"https://site.example/": page(
			`<iframe src="https://widget.example/e" loading="lazy"></iframe>`, nil),
		"https://widget.example/e": page(`<p>hi</p>`, nil),
	}
	withScroll := New(fetcher, DefaultOptions())
	res, err := withScroll.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 2 {
		t.Errorf("with scrolling: %d frames", len(res.Frames))
	}
	opts := DefaultOptions()
	opts.ScrollLazyIframes = false
	noScroll := New(fetcher, opts)
	res, err = noScroll.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 1 {
		t.Errorf("without scrolling: %d frames", len(res.Frames))
	}
}

func TestSrcdocLocalFrame(t *testing.T) {
	fetcher := MapFetcher{
		"https://site.example/": page(
			`<iframe srcdoc="&lt;script&gt;navigator.geolocation.getCurrentPosition(function(){});&lt;/script&gt;" allow="geolocation"></iframe>`, nil),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 2 {
		t.Fatalf("frames: %d", len(res.Frames))
	}
	local := res.Frames[1]
	if !local.LocalScheme || local.Origin != "null" {
		t.Errorf("local frame: %+v", local)
	}
	// Local-scheme docs evaluate with the parent's origin: geolocation
	// (default self) works.
	if len(local.Invocations) != 1 || local.Invocations[0].Blocked {
		t.Errorf("srcdoc geolocation: %+v", local.Invocations)
	}
}

func TestLocalSchemeAttackEndToEnd(t *testing.T) {
	// §6.2 Table 11 through the whole browser: example.org declares
	// camera=(self); a data: iframe re-delegates camera to attacker.com.
	mkFetcher := func() MapFetcher {
		return MapFetcher{
			"https://example.org/": page(
				`<iframe src="data:text/html,<iframe src='https://attacker.example/x' allow='camera'></iframe>" allow="camera"></iframe>`,
				map[string]string{"Permissions-Policy": "camera=(self)"}),
			"https://attacker.example/x": page(
				`<script>navigator.mediaDevices.getUserMedia({video:true}).catch(function(){});</script>`, nil),
		}
	}
	run := func(mode policy.SpecMode) bool {
		opts := DefaultOptions()
		opts.Mode = mode
		b := New(mkFetcher(), opts)
		res, err := b.Visit(context.Background(), "https://example.org/")
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range res.Frames {
			if fr.URL == "https://attacker.example/x" {
				if len(fr.Invocations) != 1 {
					t.Fatalf("attacker invocations: %+v", fr.Invocations)
				}
				return !fr.Invocations[0].Blocked
			}
		}
		t.Fatal("attacker frame not reached")
		return false
	}
	if !run(policy.SpecActual) {
		t.Error("actual spec: the local-scheme bypass must grant the attacker camera")
	}
	if run(policy.SpecExpected) {
		t.Error("expected behaviour: the parent's camera=(self) must bind the nested delegation")
	}
}

func TestCSPFrameSrcBlocksAttack(t *testing.T) {
	// The paper: the bypass works "when the CSP does not enforce frame
	// restrictions". With frame-src 'self', the data: frame never loads.
	fetcher := MapFetcher{
		"https://example.org/": page(
			`<iframe src="data:text/html,<b>x</b>" allow="camera"></iframe>`,
			map[string]string{
				"Permissions-Policy":      "camera=(self)",
				"Content-Security-Policy": "frame-src 'self'",
			}),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://example.org/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 1 {
		t.Errorf("CSP must block the data: frame; frames = %d", len(res.Frames))
	}
}

func TestInteractionAblation(t *testing.T) {
	// Permission usage gated behind a click is invisible without
	// interaction and visible with it (Table 12's comparison).
	src := `<script>
	document.body.addEventListener('click', function () {
		navigator.mediaDevices.getUserMedia({audio: true});
	});
	</script>`
	fetcher := MapFetcher{"https://shop.example/": page(src, nil)}

	plain := New(fetcher, DefaultOptions())
	res, err := plain.Visit(context.Background(), "https://shop.example/")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.TopFrame().Invocations); n != 0 {
		t.Errorf("no-interaction run observed %d invocations", n)
	}
	// But static analysis still sees it (the hybrid advantage, A.3).
	foundStatic := false
	for _, f := range res.TopFrame().StaticFindings {
		if f.Permission == "microphone" {
			foundStatic = true
		}
	}
	if !foundStatic {
		t.Error("static analysis must find the gated getUserMedia")
	}

	opts := DefaultOptions()
	opts.Interact = true
	interactive := New(fetcher, opts)
	res, err = interactive.Visit(context.Background(), "https://shop.example/")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.TopFrame().Invocations); n != 1 {
		t.Errorf("interaction run observed %d invocations; want 1", n)
	}
}

func TestMaxFramesTruncation(t *testing.T) {
	body := strings.Repeat(`<iframe src="https://w.example/e"></iframe>`, 10)
	fetcher := MapFetcher{
		"https://site.example/": page(body, nil),
		"https://w.example/e":   page("<p>w</p>", nil),
	}
	opts := DefaultOptions()
	opts.MaxFramesPerPage = 4
	b := New(fetcher, opts)
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Frames) != 4 {
		t.Errorf("truncation: %d frames, truncated=%v", len(res.Frames), res.Truncated)
	}
}

func TestFrameLoadFailureRecorded(t *testing.T) {
	fetcher := MapFetcher{
		"https://site.example/": page(`<iframe src="https://gone.example/x"></iframe>`, nil),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 2 || res.Frames[1].LoadError == "" {
		t.Errorf("frame failure: %+v", res.Frames)
	}
}

func TestScriptErrorsDoNotAbortPage(t *testing.T) {
	fetcher := MapFetcher{
		"https://site.example/": page(`
		<script>this is not javascript %%%</script>
		<script>navigator.getBattery();</script>`, nil),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopFrame()
	if len(top.ScriptErrors) == 0 {
		t.Error("the broken script must be recorded")
	}
	if len(top.Invocations) != 1 {
		t.Errorf("the healthy script must still run: %+v", top.Invocations)
	}
}

func TestCSPParsing(t *testing.T) {
	c := ParseCSP("default-src 'self'; frame-src https://youtube.com *.trusted.example; script-src 'none'")
	if !c.Present {
		t.Fatal("present")
	}
	srcs, ok := c.FrameSources()
	if !ok || len(srcs) != 2 {
		t.Fatalf("frame sources: %v", srcs)
	}
	tests := []struct {
		url  string
		want bool
	}{
		{"https://youtube.com/embed", true},
		{"https://sub.trusted.example/w", true},
		{"https://evil.example/", false},
		{"data:text/html,x", false},
	}
	// frame-src * admits any network URL but NOT data:/blob:.
	wild := ParseCSP("frame-src *")
	if !wild.AllowsFrame("https://any.example/") {
		t.Error("frame-src * must allow network frames")
	}
	if wild.AllowsFrame("data:text/html,x") {
		t.Error("frame-src * must not allow data: frames")
	}
	if !ParseCSP("frame-src data:").AllowsFrame("data:text/html,x") {
		t.Error("explicit data: scheme-source must allow data: frames")
	}
	for _, tt := range tests {
		if got := c.AllowsFrame(tt.url); got != tt.want {
			t.Errorf("AllowsFrame(%q) = %v; want %v", tt.url, got, tt.want)
		}
	}
	// No CSP at all: everything allowed — the §6.2 precondition.
	empty := ParseCSP("")
	if !empty.AllowsFrame("data:text/html,x") {
		t.Error("absent CSP must allow all frames")
	}
	// default-src fallback governs frames.
	fallback := ParseCSP("default-src 'none'")
	if fallback.AllowsFrame("https://any.example/") {
		t.Error("default-src 'none' must block frames")
	}
}
