package browser

import "errors"

// ResponseArchive is an optional persistent tier below the in-memory
// response cache: a content-addressed on-disk archive that survives the
// process, so a repeat crawl of the same population skips the network
// entirely and a finished crawl can be replayed offline byte for byte.
// internal/diskcache provides the implementation; the interface lives
// here so the cache layer stays free of filesystem concerns.
//
// Contract: Load returns (nil, nil) on a recoverable miss — the URL is
// not archived, or its object is corrupt and should be re-fetched. A
// non-nil error is terminal for the lookup and must be surfaced to the
// caller instead of fetching: in offline replay it is either
// ErrNotArchived or a *ReplayedFailure. Responses returned by Load are
// shared and read-only, like cached ones.
type ResponseArchive interface {
	Load(rawURL string) (*Response, error)
	// Store archives a successful response.
	Store(rawURL string, resp *Response)
	// StoreFailure archives a failed fetch so offline replay reproduces
	// the failure instead of misreporting it as a miss.
	StoreFailure(rawURL string, fetchErr error)
	// Stats snapshots the archive counters.
	Stats() ArchiveStats
}

// ArchiveStats is a point-in-time snapshot of a ResponseArchive's
// counters.
type ArchiveStats struct {
	// Hits are lookups served from the archive (responses or, offline,
	// replayed failures) without touching the network.
	Hits uint64 `json:"hits"`
	// Writes are manifest entries written this run (successes and
	// archived failures).
	Writes uint64 `json:"writes"`
	// CorruptRecovered counts hash-mismatched, truncated, or missing
	// objects that were degraded to misses and re-fetched rather than
	// surfaced as errors.
	CorruptRecovered uint64 `json:"corrupt_recovered"`
	// OrphansSwept counts temp object/manifest files left by writers
	// that died mid-rename (a SIGKILLed fleet worker) and GC'd by the
	// crash-consistency pass on open.
	OrphansSwept uint64 `json:"orphans_swept"`
	// BytesStored is object payload bytes written to disk this run
	// (content addressing stores each distinct body once).
	BytesStored uint64 `json:"bytes_stored"`
	// Entries is the number of URLs in the manifest index; Objects the
	// number of distinct content-addressed bodies they reference.
	Entries uint64 `json:"entries"`
	Objects uint64 `json:"objects"`
}

// ErrNotArchived distinguishes a strict offline-replay miss from every
// network failure: the archive is the whole web in that mode, and the
// requested URL is not on it. Wrapped with the URL by the archive;
// check with errors.Is.
var ErrNotArchived = errors.New("offline replay: resource not archived")

// ReplayedFailure replays a fetch failure recorded in the archive: the
// original crawl saw this URL fail with Class (a store.FailureClass
// value — kept as a string here because the store package imports this
// one), and offline replay must reproduce that outcome rather than
// report the URL as missing. The crawler's Classify maps it back to
// the recorded class.
type ReplayedFailure struct {
	Class string
	Msg   string
}

func (f *ReplayedFailure) Error() string { return f.Msg }
