package browser

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestCachingFetcherEviction: a bounded cache holds at most MaxEntries
// URLs, evicts least-recently-used, and re-fetches evicted URLs.
func TestCachingFetcherEviction(t *testing.T) {
	inner := &countingFetcher{}
	c := NewBoundedCachingFetcher(inner, 2)
	ctx := context.Background()

	for _, u := range []string{"https://a.test/", "https://b.test/", "https://c.test/"} {
		if _, err := c.Fetch(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("want 2 entries and 1 eviction, got %+v", s)
	}

	// a.test was evicted (least recently used): fetching it again is a
	// real fetch; c.test is still a hit.
	calls := inner.calls.Load()
	if _, err := c.Fetch(ctx, "https://c.test/"); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != calls {
		t.Error("recently-used entry was evicted")
	}
	if _, err := c.Fetch(ctx, "https://a.test/"); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != calls+1 {
		t.Error("evicted entry served from cache")
	}
}

// TestCachingFetcherEvictionReleasesBodies: evicting the last URL
// referencing an interned body frees the body; shared bodies survive
// until their last referencing entry goes.
func TestCachingFetcherEvictionReleasesBodies(t *testing.T) {
	inner := &countingFetcher{} // body is "body of <url>": unique per URL
	c := NewBoundedCachingFetcher(inner, 3)
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := c.Fetch(ctx, fmt.Sprintf("https://u%d.test/", i)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 3 {
		t.Fatalf("entries = %d, want 3", s.Entries)
	}
	if s.UniqueBodies != 3 {
		t.Fatalf("unique bodies = %d, want 3 (evicted bodies must be released)", s.UniqueBodies)
	}
	if s.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", s.Evictions)
	}
}

// sameBodyFetcher serves the identical body for every URL, so every
// cache entry aliases one interned body.
type sameBodyFetcher struct{}

func (sameBodyFetcher) Fetch(_ context.Context, rawURL string) (*Response, error) {
	return &Response{Status: 200, Body: "shared body", FinalURL: rawURL}, nil
}

// TestCachingFetcherSharedBodySurvivesPartialEviction: an interned body
// referenced by several entries is only freed when the last of them is
// evicted.
func TestCachingFetcherSharedBodySurvivesPartialEviction(t *testing.T) {
	c := NewBoundedCachingFetcher(sameBodyFetcher{}, 2)
	ctx := context.Background()

	for _, u := range []string{"https://a.test/", "https://b.test/", "https://c.test/"} {
		if _, err := c.Fetch(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	// One eviction happened, but b and c still reference the body.
	s := c.Stats()
	if s.Evictions != 1 || s.UniqueBodies != 1 {
		t.Fatalf("want 1 eviction with the shared body retained, got %+v", s)
	}
	// A cached entry still serves the body.
	resp, err := c.Fetch(ctx, "https://c.test/")
	if err != nil || resp.Body != "shared body" {
		t.Fatalf("cached shared body lost: %q, %v", resp.Body, err)
	}
}

// sizedBodyFetcher serves a body of per-URL configured length.
type sizedBodyFetcher struct{ sizes map[string]int }

func (f sizedBodyFetcher) Fetch(_ context.Context, rawURL string) (*Response, error) {
	return &Response{Status: 200, Body: strings.Repeat("x", f.sizes[rawURL]), FinalURL: rawURL}, nil
}

// TestCachingFetcherByteBudget: the byte bound evicts enough entries to
// stay under budget even when the entry count is far below its own cap,
// releases the evicted interned bodies, and accounts the bytes.
func TestCachingFetcherByteBudget(t *testing.T) {
	inner := sizedBodyFetcher{sizes: map[string]int{
		"https://a.test/": 400,
		"https://b.test/": 400,
		"https://c.test/": 700,
	}}
	c := NewByteBoundedCachingFetcher(inner, 100, 1000)
	ctx := context.Background()

	for _, u := range []string{"https://a.test/", "https://b.test/", "https://c.test/"} {
		if _, err := c.Fetch(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	// 400+400+700 = 1500: a and b must both go to fit c's 700.
	s := c.Stats()
	if s.Evictions != 2 || s.BytesEvicted != 800 {
		t.Fatalf("want 2 evictions / 800 bytes evicted, got %+v", s)
	}
	if s.Entries != 1 || s.CachedBytes != 700 || s.UniqueBodies != 1 {
		t.Fatalf("want only c cached (700 B, 1 body), got %+v", s)
	}
}

// TestCachingFetcherOversizedBodyNeverCached: a body alone bigger than
// the whole byte budget is served to the caller but not retained, and
// its interned body is released immediately.
func TestCachingFetcherOversizedBodyNeverCached(t *testing.T) {
	inner := sizedBodyFetcher{sizes: map[string]int{
		"https://small.test/": 100,
		"https://huge.test/":  5000,
	}}
	c := NewByteBoundedCachingFetcher(inner, 0, 1000)
	ctx := context.Background()

	if _, err := c.Fetch(ctx, "https://small.test/"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Fetch(ctx, "https://huge.test/")
	if err != nil || len(resp.Body) != 5000 {
		t.Fatalf("oversized body not served intact: %d bytes, %v", len(resp.Body), err)
	}
	s := c.Stats()
	if s.Entries != 0 || s.CachedBytes != 0 || s.UniqueBodies != 0 {
		t.Fatalf("oversized body (or its victims) retained: %+v", s)
	}
	if s.Evictions != 2 || s.BytesEvicted != 5100 {
		t.Fatalf("want 2 evictions / 5100 bytes (small + huge itself), got %+v", s)
	}
	// The huge URL stays fetchable — it just always misses.
	if _, err := c.Fetch(ctx, "https://huge.test/"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != 3 {
		t.Errorf("misses = %d, want 3 (huge never cached)", got)
	}
}
