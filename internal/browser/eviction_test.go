package browser

import (
	"context"
	"fmt"
	"testing"
)

// TestCachingFetcherEviction: a bounded cache holds at most MaxEntries
// URLs, evicts least-recently-used, and re-fetches evicted URLs.
func TestCachingFetcherEviction(t *testing.T) {
	inner := &countingFetcher{}
	c := NewBoundedCachingFetcher(inner, 2)
	ctx := context.Background()

	for _, u := range []string{"https://a.test/", "https://b.test/", "https://c.test/"} {
		if _, err := c.Fetch(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("want 2 entries and 1 eviction, got %+v", s)
	}

	// a.test was evicted (least recently used): fetching it again is a
	// real fetch; c.test is still a hit.
	calls := inner.calls.Load()
	if _, err := c.Fetch(ctx, "https://c.test/"); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != calls {
		t.Error("recently-used entry was evicted")
	}
	if _, err := c.Fetch(ctx, "https://a.test/"); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != calls+1 {
		t.Error("evicted entry served from cache")
	}
}

// TestCachingFetcherEvictionReleasesBodies: evicting the last URL
// referencing an interned body frees the body; shared bodies survive
// until their last referencing entry goes.
func TestCachingFetcherEvictionReleasesBodies(t *testing.T) {
	inner := &countingFetcher{} // body is "body of <url>": unique per URL
	c := NewBoundedCachingFetcher(inner, 3)
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := c.Fetch(ctx, fmt.Sprintf("https://u%d.test/", i)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 3 {
		t.Fatalf("entries = %d, want 3", s.Entries)
	}
	if s.UniqueBodies != 3 {
		t.Fatalf("unique bodies = %d, want 3 (evicted bodies must be released)", s.UniqueBodies)
	}
	if s.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", s.Evictions)
	}
}

// sameBodyFetcher serves the identical body for every URL, so every
// cache entry aliases one interned body.
type sameBodyFetcher struct{}

func (sameBodyFetcher) Fetch(_ context.Context, rawURL string) (*Response, error) {
	return &Response{Status: 200, Body: "shared body", FinalURL: rawURL}, nil
}

// TestCachingFetcherSharedBodySurvivesPartialEviction: an interned body
// referenced by several entries is only freed when the last of them is
// evicted.
func TestCachingFetcherSharedBodySurvivesPartialEviction(t *testing.T) {
	c := NewBoundedCachingFetcher(sameBodyFetcher{}, 2)
	ctx := context.Background()

	for _, u := range []string{"https://a.test/", "https://b.test/", "https://c.test/"} {
		if _, err := c.Fetch(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	// One eviction happened, but b and c still reference the body.
	s := c.Stats()
	if s.Evictions != 1 || s.UniqueBodies != 1 {
		t.Fatalf("want 1 eviction with the shared body retained, got %+v", s)
	}
	// A cached entry still serves the body.
	resp, err := c.Fetch(ctx, "https://c.test/")
	if err != nil || resp.Body != "shared body" {
		t.Fatalf("cached shared body lost: %q, %v", resp.Body, err)
	}
}
