package browser

import (
	"context"
	"testing"
)

// TestSandboxedFrameOpaqueOrigin: sandbox without allow-same-origin
// forces an opaque origin — no allowlist entry matches it, so even an
// explicit camera delegation fails.
func TestSandboxedFrameOpaqueOrigin(t *testing.T) {
	body := `<script>navigator.mediaDevices.getUserMedia({video:true}).catch(function(){});</script>`
	fetcher := MapFetcher{
		"https://site.example/": page(`
			<iframe src="https://w.example/a" allow="camera" sandbox="allow-scripts"></iframe>
			<iframe src="https://w.example/a" allow="camera" sandbox="allow-scripts allow-same-origin"></iframe>
			<iframe src="https://w.example/a" allow="camera"></iframe>`, nil),
		"https://w.example/a": page(body, nil),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 4 {
		t.Fatalf("frames: %d", len(res.Frames))
	}
	sandboxed := res.Frames[1]
	if sandboxed.Origin != "null" {
		t.Errorf("sandboxed frame origin = %q; want null", sandboxed.Origin)
	}
	if len(sandboxed.Invocations) != 1 || !sandboxed.Invocations[0].Blocked {
		t.Errorf("sandboxed frame camera must be blocked: %+v", sandboxed.Invocations)
	}
	sameOrigin := res.Frames[2]
	if sameOrigin.Origin == "null" {
		t.Error("allow-same-origin must keep the real origin")
	}
	if len(sameOrigin.Invocations) != 1 || sameOrigin.Invocations[0].Blocked {
		t.Errorf("allow-same-origin + delegation must work: %+v", sameOrigin.Invocations)
	}
	plain := res.Frames[3]
	if len(plain.Invocations) != 1 || plain.Invocations[0].Blocked {
		t.Errorf("unsandboxed delegated frame must work: %+v", plain.Invocations)
	}
}

// TestBareSandboxFullyRestricts: sandbox="" (present, empty) also
// yields an opaque origin.
func TestBareSandboxFullyRestricts(t *testing.T) {
	fetcher := MapFetcher{
		"https://site.example/": page(`<iframe src="https://w.example/a" allow="camera" sandbox></iframe>`, nil),
		"https://w.example/a":   page(`<script>navigator.mediaDevices.getUserMedia({video:true}).catch(function(){});</script>`, nil),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Frames[1]
	if fr.Origin != "null" || len(fr.Invocations) != 1 || !fr.Invocations[0].Blocked {
		t.Errorf("bare sandbox: %+v", fr)
	}
}

// TestXFrameOptions: framed documents can refuse framing via
// X-Frame-Options, independently of Permissions Policy.
func TestXFrameOptions(t *testing.T) {
	fetcher := MapFetcher{
		"https://site.example/": page(`
			<iframe src="https://deny.example/w"></iframe>
			<iframe src="https://sameorigin.example/w"></iframe>
			<iframe src="https://site.example/own"></iframe>`, nil),
		"https://deny.example/w":       page("<p>x</p>", map[string]string{"X-Frame-Options": "DENY"}),
		"https://sameorigin.example/w": page("<p>x</p>", map[string]string{"X-Frame-Options": "SAMEORIGIN"}),
		"https://site.example/own":     page("<p>x</p>", map[string]string{"X-Frame-Options": "sameorigin"}),
	}
	b := New(fetcher, DefaultOptions())
	res, err := b.Visit(context.Background(), "https://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	byURL := map[string]FrameResult{}
	for _, f := range res.EmbeddedFrames() {
		byURL[f.URL] = f
	}
	if e := byURL["https://deny.example/w"].LoadError; e == "" {
		t.Error("DENY must block framing")
	}
	if e := byURL["https://sameorigin.example/w"].LoadError; e == "" {
		t.Error("SAMEORIGIN must block cross-origin framing")
	}
	if e := byURL["https://site.example/own"].LoadError; e != "" {
		t.Errorf("SAMEORIGIN must allow same-origin framing: %q", e)
	}
}
