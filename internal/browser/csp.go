package browser

import (
	"strings"
)

// CSP is a minimal Content-Security-Policy model: exactly what the
// local-scheme attack analysis of §6.2 needs — whether a frame-src (or
// fallback default-src) directive exists, and whether it would permit
// framing a given source. A missing frame-src is the precondition the
// paper identifies for the HTML-injection variant of the attack.
type CSP struct {
	// Present reports whether any CSP header was delivered.
	Present bool
	// Directives maps directive name → source expressions.
	Directives map[string][]string
}

// ParseCSP parses a Content-Security-Policy header value.
func ParseCSP(value string) CSP {
	c := CSP{Directives: map[string][]string{}}
	value = strings.TrimSpace(value)
	if value == "" {
		return c
	}
	c.Present = true
	for _, directive := range strings.Split(value, ";") {
		fields := strings.Fields(directive)
		if len(fields) == 0 {
			continue
		}
		name := strings.ToLower(fields[0])
		if _, dup := c.Directives[name]; dup {
			continue // per CSP, later duplicates are ignored
		}
		c.Directives[name] = fields[1:]
	}
	return c
}

// FrameSources returns the source list governing frames (frame-src,
// falling back to child-src then default-src) and whether any governs.
func (c CSP) FrameSources() ([]string, bool) {
	for _, name := range []string{"frame-src", "child-src", "default-src"} {
		if srcs, ok := c.Directives[name]; ok {
			return srcs, true
		}
	}
	return nil, false
}

// AllowsFrame reports whether a frame with the given URL may load.
// With no governing directive everything is allowed — the gap that
// makes the local-scheme permission hijack exploitable (§6.2).
func (c CSP) AllowsFrame(frameURL string) bool {
	srcs, governed := c.FrameSources()
	if !governed {
		return true
	}
	localTarget := strings.HasPrefix(strings.ToLower(frameURL), "data:") ||
		strings.HasPrefix(strings.ToLower(frameURL), "blob:")
	for _, src := range srcs {
		switch strings.ToLower(src) {
		case "'none'":
			return false
		case "*":
			// The CSP wildcard matches network schemes only: data: and
			// blob: require explicit scheme-sources. This is what makes
			// frame-src a real mitigation for the §6.2 local-scheme
			// injection even on permissive policies.
			if !localTarget {
				return true
			}
		case "'self'":
			// The caller compares same-origin; approximate by accepting
			// relative URLs only.
			if !strings.Contains(frameURL, "://") && !strings.HasPrefix(frameURL, "data:") {
				return true
			}
		case "data:":
			if strings.HasPrefix(strings.ToLower(frameURL), "data:") {
				return true
			}
		default:
			if matchCSPSource(src, frameURL) {
				return true
			}
		}
	}
	return false
}

// matchCSPSource matches host-source expressions like
// https://example.com, *.example.com or example.com.
func matchCSPSource(src, frameURL string) bool {
	u := strings.TrimPrefix(strings.TrimPrefix(frameURL, "https://"), "http://")
	host := u
	if i := strings.IndexAny(host, "/:"); i >= 0 {
		host = host[:i]
	}
	s := strings.TrimPrefix(strings.TrimPrefix(src, "https://"), "http://")
	if i := strings.IndexAny(s, "/:"); i >= 0 {
		s = s[:i]
	}
	if strings.HasPrefix(s, "*.") {
		return strings.HasSuffix(host, s[1:]) && host != s[2:]
	}
	return host == s
}
