package browser

import (
	"context"
	"fmt"
	"strings"

	"permodyssey/internal/html"
	"permodyssey/internal/origin"
	"permodyssey/internal/policy"
	"permodyssey/internal/script"
	"permodyssey/internal/static"
	"permodyssey/internal/webapi"
)

// Options configures a Browser.
type Options struct {
	// Mode selects the Permissions Policy behaviour (§6.2): the actual
	// specification (Chromium-like, with the local-scheme defect) or the
	// fixed/expected variant.
	Mode policy.SpecMode
	// MaxFrameDepth bounds frame recursion (top-level = depth 0).
	MaxFrameDepth int
	// MaxFramesPerPage bounds total frames collected for one page; pages
	// exceeding it are flagged, mirroring the paper's timeout exclusions
	// for pages "with numerous included frames".
	MaxFramesPerPage int
	// ScrollLazyIframes loads loading="lazy" frames, as the crawler does
	// by scrolling to them (§3.2). Off, they are skipped — the ablation
	// of DESIGN.md.
	ScrollLazyIframes bool
	// Interact fires load/click handlers after the no-interaction pass
	// (the Appendix A.3 manual-testing mode).
	Interact bool
	// ScriptCache, when non-nil, memoizes script parsing across every
	// realm this browser creates, so a shared third-party script body is
	// parsed once per crawl rather than once per including frame.
	ScriptCache *script.ParseCache
	// CompileCache, when non-nil, memoizes script compilation across
	// every realm this browser creates; realms then execute scripts
	// through the compiled fast path (pooled scope frames, slot-resolved
	// variables) instead of the AST walk. Takes precedence over
	// ScriptCache for execution; layer it over the ParseCache so parse
	// stats stay live.
	CompileCache *script.CompileCache
	// StaticCache, when non-nil, memoizes the static analyzer's pattern
	// scan by script content, so identical widget scripts are scanned
	// once per crawl instead of once per including frame.
	StaticCache *static.Cache
	// DocCache, when non-nil, memoizes HTML parsing by document content:
	// a body fetched for N frames across the crawl is tokenized and
	// built once, and every frame shares the immutable parsed document
	// (tree plus the single-walk iframe/script/link extractions). When
	// nil, each document still parses through the arena-backed
	// ParseDoc fast path, just without cross-frame sharing.
	DocCache *html.ParseCache
}

// DefaultOptions mirror the paper's crawler configuration.
func DefaultOptions() Options {
	return Options{
		Mode:              policy.SpecActual,
		MaxFrameDepth:     3,
		MaxFramesPerPage:  64,
		ScrollLazyIframes: true,
	}
}

// Browser visits pages.
type Browser struct {
	Fetcher Fetcher
	Opts    Options
	static  *static.Analyzer
}

// New creates a Browser.
func New(f Fetcher, opts Options) *Browser {
	if opts.MaxFrameDepth <= 0 {
		opts.MaxFrameDepth = 3
	}
	if opts.MaxFramesPerPage <= 0 {
		opts.MaxFramesPerPage = 64
	}
	return &Browser{Fetcher: f, Opts: opts, static: static.NewAnalyzer()}
}

// FrameResult is everything collected for one document (§3.1).
type FrameResult struct {
	// URL is the frame URL as referenced; FinalURL after redirects.
	URL      string
	FinalURL string
	// Origin is the serialized document origin ("null" for local docs).
	Origin string
	// Site is the registrable domain of the document origin.
	Site string
	// TopLevel marks the top-level document; Depth its nesting level.
	TopLevel bool
	Depth    int
	// LocalScheme marks local-scheme documents (about:, data:, blob:,
	// javascript:, srcdoc) — they carry no headers (§4.3 excludes them
	// from header statistics for that reason).
	LocalScheme bool

	// Element holds the embedding <iframe> attributes (zero for
	// top-level documents).
	Element html.Iframe

	// Raw headers of interest.
	PermissionsPolicyRaw string
	FeaturePolicyRaw     string
	ReportOnlyRaw        string
	CSPRaw               string
	HasPermissionsPolicy bool
	HasFeaturePolicy     bool
	HasReportOnly        bool

	// HeaderValid reports whether the Permissions-Policy header parsed;
	// HeaderIssues carries linter findings for either outcome.
	HeaderValid  bool
	HeaderIssues []policy.Issue

	// Invocations are the dynamic records; StaticFindings the static
	// matches over this frame's scripts.
	Invocations    []webapi.Invocation
	StaticFindings []static.Finding
	// ScriptURLs are the external scripts the frame loaded.
	ScriptURLs []string
	// ScriptErrors are script-level failures (syntax/runtime), which a
	// real page survives too.
	ScriptErrors []string
	// LoadError is set when the frame document could not be fetched.
	LoadError string
	// BodyTruncated reports that the frame document exceeded the
	// fetcher's body budget and only a prefix was analyzed.
	BodyTruncated bool
}

// PageResult is one visited website.
type PageResult struct {
	URL    string
	Frames []FrameResult // Frames[0] is the top-level document
	// Truncated reports that MaxFramesPerPage was hit.
	Truncated bool
	// Links are the top-level document's anchor targets, resolved to
	// absolute URLs — the frontier for beyond-landing-page crawling.
	Links []string
}

// TopFrame returns the top-level frame result.
func (p *PageResult) TopFrame() *FrameResult {
	if len(p.Frames) == 0 {
		return nil
	}
	return &p.Frames[0]
}

// EmbeddedFrames returns all non-top-level frames.
func (p *PageResult) EmbeddedFrames() []FrameResult {
	if len(p.Frames) <= 1 {
		return nil
	}
	return p.Frames[1:]
}

// Visit loads a page and every reachable frame.
func (b *Browser) Visit(ctx context.Context, pageURL string) (*PageResult, error) {
	result := &PageResult{URL: pageURL}
	resp, err := b.Fetcher.Fetch(ctx, pageURL)
	if err != nil {
		return nil, err
	}
	if resp.Status >= 400 {
		return nil, fmt.Errorf("status %d fetching %s", resp.Status, pageURL)
	}
	top := b.newFrameResult(pageURL, resp, nil, html.Iframe{}, 0, false)
	o, err := origin.Parse(resp.FinalURL)
	if err != nil {
		return nil, fmt.Errorf("unparseable final URL %q: %w", resp.FinalURL, err)
	}
	declared := b.declaredPolicy(top)
	doc := policy.NewTopLevel(o, declared)
	result.Frames = append(result.Frames, FrameResult{})
	b.processDocument(ctx, result, 0, top, doc, resp.Body)
	return result, nil
}

// newFrameResult captures headers and identity for a fetched frame.
func (b *Browser) newFrameResult(frameURL string, resp *Response, parent *FrameResult,
	el html.Iframe, depth int, local bool) *FrameResult {
	fr := &FrameResult{
		URL:      frameURL,
		Depth:    depth,
		TopLevel: depth == 0,
		Element:  el,
	}
	if local {
		fr.LocalScheme = true
		fr.Origin = "null"
		fr.FinalURL = frameURL
		return fr
	}
	fr.FinalURL = resp.FinalURL
	fr.BodyTruncated = resp.BodyTruncated
	if o, err := origin.Parse(resp.FinalURL); err == nil {
		fr.Origin = o.String()
		fr.Site = o.Site()
	}
	if v := resp.Header.Get("Permissions-Policy"); v != "" {
		fr.HasPermissionsPolicy = true
		fr.PermissionsPolicyRaw = strings.Join(resp.Header.Values("Permissions-Policy"), ", ")
	}
	if v := resp.Header.Get("Feature-Policy"); v != "" {
		fr.HasFeaturePolicy = true
		fr.FeaturePolicyRaw = v
	}
	if v := resp.Header.Get("Permissions-Policy-Report-Only"); v != "" {
		fr.HasReportOnly = true
		fr.ReportOnlyRaw = v
	}
	fr.CSPRaw = resp.Header.Get("Content-Security-Policy")
	_ = parent
	return fr
}

// declaredPolicy parses the frame's headers into the effective declared
// policy, enforcing the browser fallback chain: a valid
// Permissions-Policy wins; on parse failure the whole header is dropped;
// the deprecated Feature-Policy header applies only when no (valid or
// invalid?) — per Chromium, only when no Permissions-Policy header is
// present at all.
func (b *Browser) declaredPolicy(fr *FrameResult) policy.Policy {
	if fr.HasPermissionsPolicy {
		p, issues, err := policy.ParsePermissionsPolicy(fr.PermissionsPolicyRaw)
		fr.HeaderIssues = issues
		if err == nil {
			fr.HeaderValid = true
			return p
		}
		return policy.Policy{} // dropped entirely (§4.3.3)
	}
	if fr.HasFeaturePolicy {
		p, issues := policy.ParseFeaturePolicy(fr.FeaturePolicyRaw)
		fr.HeaderIssues = append(fr.HeaderIssues, issues...)
		fr.HeaderValid = true
		return p
	}
	return policy.Policy{}
}

// processDocument runs scripts, records analyses, and recurses into
// child frames. slot is the index of this frame in result.Frames.
func (b *Browser) processDocument(ctx context.Context, result *PageResult, slot int,
	fr *FrameResult, doc *policy.Document, body string) {
	// One parse per document content: the cache shares the immutable
	// parsed document across every frame (and every site) embedding the
	// same body; without it the arena-backed parse is still single-walk
	// and recycled on release. The browser only reads the extractions —
	// the shared tree must never be mutated.
	var pd *html.ParsedDoc
	if b.Opts.DocCache != nil {
		pd = b.Opts.DocCache.Parse(body)
	} else {
		pd = html.ParseDoc(body)
	}
	defer pd.Release()
	if fr.TopLevel {
		for _, href := range pd.Links {
			if resolved := resolveURL(fr.FinalURL, href); resolved != "" {
				result.Links = append(result.Links, resolved)
			}
		}
	}
	realm := webapi.NewRealm(doc, fr.FinalURL)
	if b.Opts.ScriptCache != nil {
		realm.ParseScript = b.Opts.ScriptCache.Parse
	}
	if b.Opts.CompileCache != nil {
		realm.CompileScript = b.Opts.CompileCache.Compile
	}

	// Collect and run scripts: dynamic analysis.
	for _, s := range pd.Scripts {
		src, urlStr := s.Body, ""
		if !s.Inline {
			urlStr = resolveURL(fr.FinalURL, s.Src)
			if urlStr == "" {
				continue
			}
			fr.ScriptURLs = append(fr.ScriptURLs, urlStr)
			resp, err := b.Fetcher.Fetch(ctx, urlStr)
			if err != nil || resp.Status >= 400 {
				fr.ScriptErrors = append(fr.ScriptErrors, fmt.Sprintf("load %s failed", urlStr))
				continue
			}
			src = resp.Body
		}
		// Static analysis over the same sources (§3.1.1: both approaches
		// capture inline and external scripts).
		if b.Opts.StaticCache != nil {
			fr.StaticFindings = append(fr.StaticFindings, b.Opts.StaticCache.Analyze(src, urlStr)...)
		} else {
			fr.StaticFindings = append(fr.StaticFindings, b.static.Analyze(src, urlStr)...)
		}
		if err := realm.RunScript(src, urlStr); err != nil {
			fr.ScriptErrors = append(fr.ScriptErrors, err.Error())
		}
	}

	// The settled-page phase: load handlers fire; with Interact also
	// clicks (the Appendix A.3 manual pass).
	if err := realm.FireEvent("load"); err != nil {
		fr.ScriptErrors = append(fr.ScriptErrors, err.Error())
	}
	if b.Opts.Interact {
		for _, ev := range []string{"DOMContentLoaded", "click", "scroll"} {
			if err := realm.FireEvent(ev); err != nil {
				fr.ScriptErrors = append(fr.ScriptErrors, err.Error())
			}
		}
	}
	fr.Invocations = realm.Rec.Invocations
	result.Frames[slot] = *fr

	// Recurse into child frames.
	if fr.Depth >= b.Opts.MaxFrameDepth {
		return
	}
	for _, el := range pd.Iframes {
		if len(result.Frames) >= b.Opts.MaxFramesPerPage {
			result.Truncated = true
			return
		}
		if el.Lazy() && !b.Opts.ScrollLazyIframes {
			continue
		}
		b.loadChildFrame(ctx, result, fr, doc, el)
	}
}

// sandboxAllowsSameOrigin reports whether a sandbox attribute value
// retains the document's real origin.
func sandboxAllowsSameOrigin(value string) bool {
	for _, tok := range strings.Fields(value) {
		if strings.EqualFold(tok, "allow-same-origin") {
			return true
		}
	}
	return false
}

// loadChildFrame loads one iframe (local-scheme or network) and recurses.
func (b *Browser) loadChildFrame(ctx context.Context, result *PageResult,
	parentFR *FrameResult, parentDoc *policy.Document, el html.Iframe) {
	allowPolicy, _ := policy.ParseAllowAttr(el.Allow)
	depth := parentFR.Depth + 1

	// CSP frame gating of the embedding document.
	if csp := ParseCSP(parentFR.CSPRaw); csp.Present {
		target := el.Src
		if el.HasSrcdoc {
			target = "about:srcdoc"
		}
		if !csp.AllowsFrame(target) {
			return
		}
	}

	if el.HasSrcdoc || origin.IsLocalURL(el.Src) {
		// Local-scheme document: no network request, no headers.
		frameURL := "about:srcdoc"
		body := el.Srcdoc
		if !el.HasSrcdoc {
			frameURL = el.Src
			if frameURL == "" {
				frameURL = "about:blank"
			}
			if strings.HasPrefix(strings.ToLower(frameURL), "data:text/html,") {
				body = frameURL[len("data:text/html,"):]
			}
		}
		fr := &FrameResult{
			URL: frameURL, FinalURL: frameURL, Depth: depth,
			LocalScheme: true, Origin: "null", Element: el,
		}
		childDoc := policy.NewSubframe(parentDoc, policy.FrameSpec{
			Allow:       allowPolicy,
			LocalScheme: true,
		}, b.Opts.Mode)
		result.Frames = append(result.Frames, FrameResult{})
		b.processDocument(ctx, result, len(result.Frames)-1, fr, childDoc, body)
		return
	}

	frameURL := resolveURL(parentFR.FinalURL, el.Src)
	if frameURL == "" {
		return
	}
	srcOrigin, srcErr := origin.Parse(frameURL)
	resp, err := b.Fetcher.Fetch(ctx, frameURL)
	if err != nil || resp.Status >= 400 || srcErr != nil {
		result.Frames = append(result.Frames, FrameResult{
			URL: frameURL, Depth: depth, Element: el,
			LoadError: "frame load failed",
		})
		return
	}
	fr := b.newFrameResult(frameURL, resp, parentFR, el, depth, false)
	docOrigin, err := origin.Parse(resp.FinalURL)
	if err != nil {
		fr.LoadError = "unparseable frame origin"
		result.Frames = append(result.Frames, *fr)
		return
	}
	// X-Frame-Options: the embedded document can refuse to be framed
	// (DENY always; SAMEORIGIN when the embedder is cross-origin).
	if xfo := strings.ToUpper(strings.TrimSpace(resp.Header.Get("X-Frame-Options"))); xfo != "" {
		parentOrigin, perr := origin.Parse(parentFR.FinalURL)
		blocked := xfo == "DENY" ||
			(xfo == "SAMEORIGIN" && (perr != nil || !docOrigin.SameOrigin(parentOrigin)))
		if blocked {
			fr.LoadError = "refused to display (X-Frame-Options: " + xfo + ")"
			result.Frames = append(result.Frames, *fr)
			return
		}
	}
	// A sandbox attribute without allow-same-origin forces an opaque
	// origin: the document matches no allowlist entry (not even 'src'),
	// so default-self features and delegations are all unavailable.
	if el.HasSandbox && !sandboxAllowsSameOrigin(el.Sandbox) {
		docOrigin = origin.NewOpaque(docOrigin.Scheme)
		fr.Origin = "null"
		fr.Site = ""
	}
	declared := b.declaredPolicy(fr)
	childDoc := policy.NewSubframe(parentDoc, policy.FrameSpec{
		SrcOrigin:      srcOrigin,
		DocumentOrigin: docOrigin,
		Allow:          allowPolicy,
		Declared:       declared,
	}, b.Opts.Mode)
	result.Frames = append(result.Frames, FrameResult{})
	b.processDocument(ctx, result, len(result.Frames)-1, fr, childDoc, resp.Body)
}
