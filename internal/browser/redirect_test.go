package browser

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRedirectedFrameLosesSrcDelegation runs the §4.2.2 redirect
// semantics through a REAL HTTP server with a 302: allow="camera"
// (default 'src') must not survive a cross-origin redirect, while
// allow="camera *" must.
func TestRedirectedFrameLosesSrcDelegation(t *testing.T) {
	mux := http.NewServeMux()
	var base string
	attackerBody := `<script>navigator.mediaDevices.getUserMedia({video:true}).catch(function(){});</script>`
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/top-src":
			w.Write([]byte(`<iframe src="` + base + `/widget" allow="camera"></iframe>`))
		case r.URL.Path == "/top-wild":
			w.Write([]byte(`<iframe src="` + base + `/widget" allow="camera *"></iframe>`))
		case r.URL.Path == "/widget":
			// The widget host redirects to "another origin" (same test
			// server, but 127.0.0.1 vs localhost yields distinct origins).
			http.Redirect(w, r, strings.Replace(base, "127.0.0.1", "localhost", 1)+"/attacker", http.StatusFound)
		case r.URL.Path == "/attacker":
			w.Write([]byte(attackerBody))
		default:
			http.NotFound(w, r)
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	base = srv.URL

	fetch := NewHTTPFetcher(srv.Client())
	b := New(fetch, DefaultOptions())

	visit := func(path string) (blocked bool) {
		page, err := b.Visit(context.Background(), base+path)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range page.EmbeddedFrames() {
			if !strings.Contains(f.FinalURL, "/attacker") {
				continue
			}
			if f.URL == f.FinalURL {
				t.Fatalf("frame was not redirected: %+v", f)
			}
			if len(f.Invocations) != 1 {
				t.Fatalf("invocations: %+v", f.Invocations)
			}
			return f.Invocations[0].Blocked
		}
		t.Fatal("attacker frame not found")
		return false
	}

	if !visit("/top-src") {
		t.Error("'src' delegation must NOT survive the cross-origin redirect")
	}
	if visit("/top-wild") {
		t.Error("wildcard delegation MUST survive the redirect (the §5.2 hijack risk)")
	}
}

// TestHTTPFetcherLimitsBody ensures oversized bodies are truncated
// rather than ballooning memory.
func TestHTTPFetcherLimitsBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 1<<20))
	}))
	defer srv.Close()
	f := NewHTTPFetcher(srv.Client())
	f.MaxBodyBytes = 1024
	resp, err := f.Fetch(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != 1024 {
		t.Errorf("body length %d; want capped at 1024", len(resp.Body))
	}
}

func TestResolveURL(t *testing.T) {
	tests := []struct{ base, ref, want string }{
		{"https://a.example/page/", "w.js", "https://a.example/page/w.js"},
		{"https://a.example/page", "/w.js", "https://a.example/w.js"},
		{"https://a.example/", "https://b.example/x", "https://b.example/x"},
		{"https://a.example/", "//c.example/y", "https://c.example/y"},
		{"https://a.example/", "  /spaced.js ", "https://a.example/spaced.js"},
	}
	for _, tt := range tests {
		if got := resolveURL(tt.base, tt.ref); got != tt.want {
			t.Errorf("resolveURL(%q, %q) = %q; want %q", tt.base, tt.ref, got, tt.want)
		}
	}
}
