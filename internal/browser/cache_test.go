package browser

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingFetcher counts Fetch calls and can inject delays and errors.
type countingFetcher struct {
	calls atomic.Int64
	delay time.Duration
	// failures maps URLs to the number of times they fail before
	// succeeding; -1 fails forever.
	mu       sync.Mutex
	failures map[string]int
}

func (f *countingFetcher) Fetch(ctx context.Context, rawURL string) (*Response, error) {
	f.calls.Add(1)
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f.mu.Lock()
	n := f.failures[rawURL]
	if n != 0 {
		if n > 0 {
			f.failures[rawURL] = n - 1
		}
		f.mu.Unlock()
		return nil, errors.New("injected failure for " + rawURL)
	}
	f.mu.Unlock()
	return &Response{Status: 200, Body: "body of " + rawURL, FinalURL: rawURL}, nil
}

func TestCachingFetcherHitMiss(t *testing.T) {
	inner := &countingFetcher{}
	c := NewCachingFetcher(inner)
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		resp, err := c.Fetch(ctx, "https://widget.example/w.js")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Body != "body of https://widget.example/w.js" {
			t.Fatalf("wrong body: %q", resp.Body)
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner fetches = %d, want 1", got)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 4 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, 4 hits, 1 entry", s)
	}
}

func TestCachingFetcherBypassPolicy(t *testing.T) {
	inner := &countingFetcher{}
	c := NewCachingFetcher(inner)
	c.Cacheable = func(rawURL string) bool { return !strings.Contains(rawURL, "site") }
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := c.Fetch(ctx, "https://www.site000001.com/"); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.calls.Load(); got != 3 {
		t.Errorf("bypassed URL fetched %d times through cache, want 3", got)
	}
	s := c.Stats()
	if s.Bypassed != 3 || s.Hits != 0 || s.Misses != 0 {
		t.Errorf("stats = %+v, want 3 bypassed and nothing cached", s)
	}
}

func TestCachingFetcherErrorsNotCached(t *testing.T) {
	inner := &countingFetcher{failures: map[string]int{"https://flaky.example/": 2}}
	c := NewCachingFetcher(inner)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := c.Fetch(ctx, "https://flaky.example/"); err == nil {
			t.Fatal("expected injected failure")
		}
	}
	if _, err := c.Fetch(ctx, "https://flaky.example/"); err != nil {
		t.Fatalf("third fetch should succeed: %v", err)
	}
	// Success is now cached.
	if _, err := c.Fetch(ctx, "https://flaky.example/"); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 3 {
		t.Errorf("inner fetches = %d, want 3 (two failures + one success)", got)
	}
	s := c.Stats()
	if s.Errors != 2 || s.Misses != 3 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 errors, 3 misses, 1 hit", s)
	}
}

// TestCachingFetcherSingleflight drives many goroutines at the same
// slow URL and checks exactly one inner fetch happens, with every other
// caller either coalescing onto it or hitting the cache afterwards.
// Run under -race this also proves the cache is concurrency-safe.
func TestCachingFetcherSingleflight(t *testing.T) {
	inner := &countingFetcher{delay: 30 * time.Millisecond}
	c := NewCachingFetcher(inner)
	const goroutines = 32

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Fetch(context.Background(), "https://cdn.example/lib.js")
			if err != nil {
				t.Error(err)
				return
			}
			if resp.Body != "body of https://cdn.example/lib.js" {
				t.Errorf("wrong body: %q", resp.Body)
			}
		}()
	}
	wg.Wait()

	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner fetches = %d, want 1 (singleflight)", got)
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Coalesced != goroutines-1 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want %d",
			s.Hits, s.Coalesced, s.Hits+s.Coalesced, goroutines-1)
	}
}

// TestCachingFetcherLeaderFailureNotShared: a waiter must not inherit
// the leader's failure (which may stem from the leader's own per-site
// deadline); it retries the fetch itself.
func TestCachingFetcherLeaderFailureNotShared(t *testing.T) {
	inner := &countingFetcher{delay: 20 * time.Millisecond,
		failures: map[string]int{"https://once.example/": 1}}
	c := NewCachingFetcher(inner)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Fetch(context.Background(), "https://once.example/")
		}(i)
	}
	wg.Wait()

	// Exactly one goroutine was the first leader and absorbed the
	// injected failure; everyone else must have recovered.
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed != 1 {
		t.Errorf("%d goroutines failed, want exactly 1 (the first leader)", failed)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Errorf("entries = %d, want the eventual success cached", s.Entries)
	}
}

// TestCachingFetcherContentAddressing: identical bodies under distinct
// URLs are stored once.
func TestCachingFetcherContentAddressing(t *testing.T) {
	same := &Response{Status: 200, Body: "<html><body>in-house frame</body></html>"}
	m := MapFetcher{}
	for i := 0; i < 10; i++ {
		m[fmt.Sprintf("https://www.site%06d.com/frame", i)] = &Response{
			Status: 200, Body: same.Body,
		}
	}
	c := NewCachingFetcher(m)
	ctx := context.Background()
	for u := range m {
		if _, err := c.Fetch(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 10 {
		t.Errorf("entries = %d, want 10", s.Entries)
	}
	if s.UniqueBodies != 1 {
		t.Errorf("unique bodies = %d, want 1 (content-addressed)", s.UniqueBodies)
	}
	if want := uint64(9 * len(same.Body)); s.DedupedBytes != want {
		t.Errorf("deduped bytes = %d, want %d", s.DedupedBytes, want)
	}
}
