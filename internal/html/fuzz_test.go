package html

import (
	"reflect"
	"testing"
)

// fuzzSeeds are tag-soup edge cases worth mutating from: unterminated
// constructs, raw-text traps, entity corners, attribute junk.
var fuzzSeeds = []string{
	"",
	"<",
	"<div><p>unclosed",
	"</stray><div></div>",
	"<div attr=<<>>",
	"<div a='x",
	"<!-- unterminated comment",
	"<!doctype html>",
	"<script>never closed",
	"<script>var a = '</scrip' + 't>';</script>",
	"<ScRiPt>x</sCrIpT><p>after</p>",
	"<title>a < b</title>",
	"<textarea><div>not a div</div></textarea>",
	"<iframe src=\"/a\" allow=\"camera; mic\" sandbox srcdoc=\"&lt;p&gt;x\"></iframe>",
	"<a href=\"/x\">l</a><a href>empty</a>",
	"&amp;&#65;&#x42;&#0;&#xD800;&#x110000;&#;&unknown;",
	"<div/><br><img src=x>",
	"<div a=\"1\" a='2' a=3 a>",
	"\x00\xff<\x80div>",
	"<!---->",
	"<!--x--><div></div>",
}

// FuzzTokenizer: the tokenizer never panics, always makes progress
// (every token consumes at least one byte or is EOF), and terminates.
func FuzzTokenizer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		z := NewTokenizer(src)
		prev := 0
		for steps := 0; ; steps++ {
			if steps > len(src)+10 {
				t.Fatalf("tokenizer failed to terminate on %q", src)
			}
			tok := z.Next()
			if tok.Type == EOFToken {
				break
			}
			if z.pos <= prev {
				t.Fatalf("tokenizer made no progress at pos %d on %q (token %+v)", z.pos, src, tok)
			}
			prev = z.pos
		}
	})
}

// FuzzParse: Parse and ParseDoc never panic, terminate, keep the tree
// shape sane (text nodes are leaves), and agree with each other — the
// single-walk extraction can never drift from the wrapper walks,
// whatever the input.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tree := Parse(src)
		if tree == nil {
			t.Fatal("Parse returned nil")
		}
		tree.Walk(func(n *Node) bool {
			if n.Type == TextNode && len(n.Children) > 0 {
				t.Error("text node with children")
			}
			return true
		})
		pd := ParseDoc(src)
		defer pd.Release()
		if !reflect.DeepEqual(pd.Iframes, Iframes(tree)) {
			t.Errorf("iframes diverge on %q", src)
		}
		if !reflect.DeepEqual(pd.Scripts, Scripts(tree)) {
			t.Errorf("scripts diverge on %q", src)
		}
		if !reflect.DeepEqual(pd.Links, Links(tree)) {
			t.Errorf("links diverge on %q", src)
		}
	})
}
