package html

import (
	"strings"
	"testing"
)

// TestRawTextPathological is the indexFold regression: a megabyte
// <script> body made entirely of near-miss "</scrip" prefixes used to
// cost an O(n·m) EqualFold scan per byte; the first-byte IndexByte skip
// must both stay correct and stay fast enough for the suite's normal
// timeout to be the only guard.
func TestRawTextPathological(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<script>")
	for sb.Len() < 1<<20 {
		sb.WriteString("</scrip")
	}
	body := sb.String()[len("<script>"):]
	sb.WriteString("</script><p>after</p>")
	doc := Parse(sb.String())
	scripts := Scripts(doc)
	if len(scripts) != 1 {
		t.Fatalf("scripts: %d", len(scripts))
	}
	if scripts[0].Body != body {
		t.Errorf("pathological body mangled: len %d want %d", len(scripts[0].Body), len(body))
	}
	if doc.First("p") == nil {
		t.Error("parsing must resume after the pathological script")
	}
}

// TestRawTextPathologicalUppercaseClose mixes cases so the skip must
// consider both first-byte spellings of the close tag.
func TestRawTextPathologicalUppercaseClose(t *testing.T) {
	body := strings.Repeat("x</SCRIP", 4096)
	doc := Parse("<script>" + body + "</SCRIPT><div id=\"d\"></div>")
	scripts := Scripts(doc)
	if len(scripts) != 1 || scripts[0].Body != body {
		t.Fatalf("uppercase close lost: %d scripts", len(scripts))
	}
	if doc.First("div") == nil {
		t.Error("parsing must resume after </SCRIPT>")
	}
}

func TestIndexFold(t *testing.T) {
	tests := []struct {
		haystack, needle string
		want             int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"", "a", -1},
		{"abc", "b", 1},
		{"abc", "B", 1},
		{"ABC", "b", 1},
		{"xxab", "ab", 2},
		{"xxAb", "aB", 2},
		{"</scrip</scrip</script>", "</script", 14},
		{"aaaa", "aaab", -1},
		{"ab", "abc", -1},
		{"zzza", "a", 3},
		{"ZzzA", "a", 3}, // 'Z' folds to 'z', not 'a'
	}
	for _, tt := range tests {
		if got := indexFold(tt.haystack, tt.needle); got != tt.want {
			t.Errorf("indexFold(%q, %q) = %d; want %d", tt.haystack, tt.needle, got, tt.want)
		}
	}
	// Cross-check against the brute-force definition on a generated set.
	for i := 0; i < 200; i++ {
		h := strings.Repeat("</scrip", i%13+1) + "</ScRiPt>"
		want := -1
		for j := 0; j+len("</script") <= len(h); j++ {
			if strings.EqualFold(h[j:j+len("</script")], "</script") {
				want = j
				break
			}
		}
		if got := indexFold(h, "</script"); got != want {
			t.Fatalf("indexFold brute-force mismatch on %q: %d vs %d", h, got, want)
		}
	}
}

// TestNumericCharrefSpec pins the HTML-spec numeric character reference
// corners: NUL, surrogates, and out-of-range values all decode to
// U+FFFD — never a NUL byte, never a raw passthrough.
func TestNumericCharrefSpec(t *testing.T) {
	tests := []struct{ in, want string }{
		{"&#0;", "�"},
		{"&#x0;", "�"},
		{"&#xD800;", "�"},            // low surrogate bound
		{"&#xDBFF;", "�"},            // inside the surrogate range
		{"&#xDFFF;", "�"},            // high surrogate bound
		{"&#55296;", "�"},            // 0xD800 in decimal
		{"&#x110000;", "�"},          // one past the Unicode range
		{"&#x7FFFFFFF;", "�"},        // would overflow a rune without the clamp
		{"&#99999999999;", "�"},      // long decimal run, clamped
		{"&#xD7FF;", "퟿"},            // just below the surrogates: decodes
		{"&#xE000;", ""},            // just above the surrogates: decodes
		{"&#x10FFFF;", "\U0010FFFF"}, // the last valid code point
		{"&#65;&#x42;", "AB"},        // ordinary references still work
		{"&#;", "&#;"},               // no digits: not a reference
		{"&#x;", "&#x;"},             // no hex digits: not a reference
		{"&#xG;", "&#xG;"},           // bad digit: passthrough
		{"a&#0;b&#xD800;c", "a�b�c"},
	}
	for _, tt := range tests {
		if got := DecodeEntities(tt.in); got != tt.want {
			t.Errorf("DecodeEntities(%q) = %q; want %q", tt.in, got, tt.want)
		}
	}
	// The decoded attribute path must agree.
	doc := Parse(`<div a="&#0;&#xD800;">`)
	if v, _ := doc.First("div").Attr("a"); v != "��" {
		t.Errorf("attribute charref: %q", v)
	}
}

// TestInternLower pins the interning fast paths: common names come back
// as the canonical package-owned string, lowercase uncommon names come
// back unchanged, and only uppercase uncommon names allocate.
func TestInternLower(t *testing.T) {
	tests := []struct{ in, want string }{
		{"div", "div"},
		{"DIV", "div"},
		{"IfRaMe", "iframe"},
		{"allow", "allow"},
		{"data-custom-thing", "data-custom-thing"},
		{"DATA-CUSTOM", "data-custom"},
		{"", ""},
		{"averyveryverylongtagnamethatexceedsthebuffer", "averyveryverylongtagnamethatexceedsthebuffer"},
	}
	for _, tt := range tests {
		if got := internLower(tt.in); got != tt.want {
			t.Errorf("internLower(%q) = %q; want %q", tt.in, got, tt.want)
		}
	}
	// Interned names share backing storage with the canonical table
	// entry, so a cached tree never pins its source body via a tag name.
	big := "<DIV>" + strings.Repeat("x", 1000) + "</DIV>"
	tag := Parse(big).First("div").Tag
	if tag != "div" {
		t.Fatalf("tag: %q", tag)
	}
}

func BenchmarkRawTextPathological(b *testing.B) {
	src := "<script>" + strings.Repeat("</scrip", 1<<17) + "</script>"
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pd := ParseDoc(src)
		pd.Release()
	}
}
