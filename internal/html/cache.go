package html

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"permodyssey/internal/lru"
)

// ParsedDoc is one immutable parsed document: the DOM tree plus the
// three extractions the crawler needs, collected in a single pass
// during tree construction. A ParsedDoc may be shared concurrently by
// many frames and many crawl workers — nothing in it may be mutated.
//
// Ownership: the document's nodes live in a pooled arena. Every holder
// (the cache, plus each ParseCache.Parse / ParseDoc caller) owns one
// reference; Release drops it, and when the last reference goes the
// arena's chunks return to the pools. Holding Tree, or any *Node inside
// it, past Release is a use-after-release bug — the extracted value
// slices (Iframes, Scripts, Links) are plain strings and structs and
// stay valid forever.
type ParsedDoc struct {
	Tree    *Node
	Iframes []Iframe
	Scripts []Script
	Links   []string
	// SrcLen is the byte length of the parsed source — the cache's byte
	// charge for this document.
	SrcLen int

	arena *arena
	refs  atomic.Int32
}

// ParseDoc parses src into an arena-backed document with the iframe,
// script, and link extractions built during the same walk. The caller
// owns one reference and must Release it when done with Tree.
func ParseDoc(src string) *ParsedDoc {
	a := newArena()
	var ex docExtract
	d := &ParsedDoc{SrcLen: len(src), arena: a}
	d.Tree = parseInto(src, a, &ex)
	if len(ex.iframes) > 0 {
		d.Iframes = make([]Iframe, 0, len(ex.iframes))
		for _, el := range ex.iframes {
			d.Iframes = append(d.Iframes, iframeOf(el))
		}
	}
	if len(ex.scripts) > 0 {
		d.Scripts = make([]Script, 0, len(ex.scripts))
		for _, el := range ex.scripts {
			d.Scripts = append(d.Scripts, scriptOf(el))
		}
	}
	d.Links = ex.links
	d.refs.Store(1)
	return d
}

// Release drops the caller's reference; the last release returns the
// arena to the pools. Safe on a nil document (a skipped parse).
func (d *ParsedDoc) Release() {
	if d == nil || d.arena == nil {
		return
	}
	if d.refs.Add(-1) == 0 {
		a := d.arena
		// Poison the tree pointer so a use-after-release trips fast and
		// loudly instead of reading recycled nodes.
		d.arena, d.Tree = nil, nil
		a.release()
	}
}

// ParseStats is a point-in-time snapshot of ParseCache counters.
type ParseStats struct {
	// Hits are documents answered from the cache; Misses are real parses.
	Hits   uint64
	Misses uint64
	// Coalesced are lookups that joined an in-flight parse of the same
	// body and shared its result.
	Coalesced uint64
	// Evictions are entries dropped to keep the cache under its caps.
	Evictions uint64
	// Entries is the number of distinct documents currently cached;
	// CachedBytes their summed source-byte charge.
	Entries     uint64
	CachedBytes uint64
}

// cacheEntry is one cache slot. Reference accounting must survive two
// races: readers arriving while the parse is still in flight (the doc
// pointer does not exist yet), and the entry being evicted in either
// state. holds counts references handed out before the parse completes;
// on completion it seeds the doc's refcount and the doc takes over.
type cacheEntry struct {
	done chan struct{}

	mu    sync.Mutex
	holds int32
	doc   *ParsedDoc
}

// addHold takes one reference on behalf of a reader.
func (e *cacheEntry) addHold() {
	e.mu.Lock()
	if e.doc != nil {
		e.doc.refs.Add(1)
	} else {
		e.holds++
	}
	e.mu.Unlock()
}

// dropHold releases one reference (the cache's, on eviction).
func (e *cacheEntry) dropHold() {
	e.mu.Lock()
	doc := e.doc
	if doc == nil {
		e.holds--
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	doc.Release()
}

// ParseCache memoizes ParseDoc keyed by document content, so a body
// fetched N times across a crawl — the Zipf-popular third-party widget
// documents embedded by thousands of sites — is tokenized and built
// exactly once. Cached documents are immutable and shared; eviction
// releases the cache's reference, and the arena recycles only after the
// last concurrent reader releases too (refcounted, so a reader can
// never see recycled nodes). Concurrent first sights of the same body
// are singleflighted: one caller parses, the rest wait and share.
//
// The cache is bounded both by entry count and by summed source bytes
// (either <= 0 = that bound off), evicted least-recently-used, reusing
// the lru byte-accounting idiom of the fetch cache.
type ParseCache struct {
	mu      sync.Mutex
	entries *lru.Cache[[sha256.Size]byte, *cacheEntry]

	hits, misses, coalesced, evictions atomic.Uint64
}

// NewParseCache creates an empty cache holding at most maxEntries
// documents and maxBytes summed source bytes (each <= 0 = unbounded).
func NewParseCache(maxEntries int, maxBytes int64) *ParseCache {
	return &ParseCache{entries: lru.NewWithBytes[[sha256.Size]byte, *cacheEntry](maxEntries, maxBytes)}
}

// Parse returns the parsed document for src, parsing on first sight.
// The caller owns one reference and must Release the document when done
// with its Tree (the extracted slices outlive the release).
func (c *ParseCache) Parse(src string) *ParsedDoc {
	sum := sha256.Sum256([]byte(src))
	c.mu.Lock()
	if e, ok := c.entries.Get(sum); ok {
		// Take the reference before leaving the lock: an eviction racing
		// with this lookup must not drop the document to zero while we
		// wait on it.
		e.addHold()
		c.mu.Unlock()
		select {
		case <-e.done:
			c.hits.Add(1)
		default:
			<-e.done
			c.coalesced.Add(1)
		}
		return e.doc
	}
	// holds = 2: the cache's reference plus this (parsing) caller's.
	e := &cacheEntry{done: make(chan struct{}), holds: 2}
	_, _, evicted := c.entries.AddWithSize(sum, e, int64(len(src)))
	c.mu.Unlock()
	for _, ev := range evicted {
		c.evictions.Add(1)
		ev.Value.dropHold()
	}
	c.misses.Add(1)

	doc := ParseDoc(src)
	e.mu.Lock()
	// Transfer the entry's holds — cache ref (unless already evicted),
	// this caller, and any waiters that queued mid-parse — onto the doc.
	doc.refs.Store(e.holds)
	e.doc = doc
	e.mu.Unlock()
	close(e.done)
	return doc
}

// Stats snapshots the cache counters.
func (c *ParseCache) Stats() ParseStats {
	c.mu.Lock()
	entries := uint64(c.entries.Len())
	bytes := uint64(c.entries.Bytes())
	c.mu.Unlock()
	return ParseStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		Evictions:   c.evictions.Load(),
		Entries:     entries,
		CachedBytes: bytes,
	}
}
