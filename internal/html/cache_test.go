package html

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestParseCacheHitMiss(t *testing.T) {
	c := NewParseCache(0, 0)
	a := c.Parse(`<iframe src="/a"></iframe>`)
	b := c.Parse(`<iframe src="/a"></iframe>`)
	if a != b {
		t.Error("identical bodies must share one ParsedDoc")
	}
	other := c.Parse(`<iframe src="/b"></iframe>`)
	if other == a {
		t.Error("distinct bodies must not share a ParsedDoc")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 2 {
		t.Errorf("stats: %+v", s)
	}
	if s.CachedBytes != uint64(len(`<iframe src="/a"></iframe>`)+len(`<iframe src="/b"></iframe>`)) {
		t.Errorf("cached bytes: %d", s.CachedBytes)
	}
	a.Release()
	b.Release()
	other.Release()
}

func TestParseCacheSingleflight(t *testing.T) {
	c := NewParseCache(0, 0)
	const goroutines = 16
	src := `<div><iframe src="/shared" allow="camera"></iframe><script>w()</script></div>`
	docs := make([]*ParsedDoc, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			docs[i] = c.Parse(src)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if docs[i] != docs[0] {
			t.Fatal("concurrent first sights must share one ParsedDoc")
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses: %d (want 1: one caller parses, the rest coalesce or hit)", s.Misses)
	}
	if s.Hits+s.Coalesced != goroutines-1 {
		t.Errorf("hits %d + coalesced %d != %d", s.Hits, s.Coalesced, goroutines-1)
	}
	for _, d := range docs {
		d.Release()
	}
}

// TestParseCacheEvictionWhileReading pins the refcounting contract: an
// entry evicted while a reader still holds its document must not
// recycle the arena under the reader.
func TestParseCacheEvictionWhileReading(t *testing.T) {
	c := NewParseCache(1, 0) // every new body evicts the previous one
	src := `<div><iframe src="/held" allow="camera"></iframe></div>`
	held := c.Parse(src)
	want := Iframes(held.Tree)

	// Churn the cache: each parse evicts the prior entry.
	for i := 0; i < 20; i++ {
		d := c.Parse(fmt.Sprintf(`<iframe src="/churn%d"></iframe>`, i))
		d.Release()
	}
	if got := c.Stats().Evictions; got == 0 {
		t.Fatal("churn produced no evictions")
	}
	// The held document must still read correctly: its arena cannot have
	// been recycled while we hold a reference.
	if held.Tree == nil {
		t.Fatal("held document released under an active reader")
	}
	if got := Iframes(held.Tree); !reflect.DeepEqual(got, want) {
		t.Errorf("held document changed after eviction: %+v vs %+v", got, want)
	}
	held.Release()
	if held.Tree != nil {
		t.Error("last release must poison the tree")
	}
}

func TestParseCacheByteBound(t *testing.T) {
	c := NewParseCache(0, 64)
	small := c.Parse(`<p>tiny</p>`)
	small.Release()
	// An entry alone larger than the budget is served but never retained.
	big := c.Parse(`<div>` + string(make([]byte, 200)) + `</div>`)
	if len(big.Tree.Children) == 0 {
		t.Error("oversized document must still parse")
	}
	big.Release()
	s := c.Stats()
	if s.CachedBytes > 64 {
		t.Errorf("byte bound violated: %d cached", s.CachedBytes)
	}
	if s.Evictions == 0 {
		t.Error("oversized insert must evict")
	}
}

// TestParseCacheConcurrentChurn hammers the cache with overlapping
// bodies, a tiny entry bound, and concurrent readers — the -race run
// proves the hold/eviction accounting has no windows.
func TestParseCacheConcurrentChurn(t *testing.T) {
	c := NewParseCache(4, 0)
	bodies := make([]string, 12)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`<div><iframe src="/w%d" allow="camera"></iframe><a href="/l%d">x</a></div>`, i, i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				body := bodies[(g*7+i)%len(bodies)]
				d := c.Parse(body)
				if len(d.Iframes) != 1 || len(d.Links) != 1 {
					t.Error("bad extraction under churn")
					d.Release()
					return
				}
				if d.Tree == nil || d.Tree.First("iframe") == nil {
					t.Error("recycled tree observed under churn")
					d.Release()
					return
				}
				d.Release()
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries > 4 {
		t.Errorf("entry bound violated: %d", s.Entries)
	}
	if s.Misses == 0 || s.Evictions == 0 {
		t.Errorf("churn stats implausible: %+v", s)
	}
}
