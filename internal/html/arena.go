package html

import "sync"

// Slab sizes: nodes and attrs are carved in fixed chunks recycled
// through sync.Pools; a typical landing page (a few hundred nodes)
// needs one or two chunks of each.
const (
	nodeChunkSize = 256
	attrChunkSize = 256
	kidChunkSize  = 1024
	// kidSliceCap is the capacity carved for a node's first child; most
	// elements have a handful of children, and the rare wide node simply
	// grows onto the heap.
	kidSliceCap = 4
	// oversizedAttrs falls back to a heap allocation rather than burning
	// most of a chunk on one pathological tag.
	oversizedAttrs = attrChunkSize / 4
)

// The chunk pools hold pointers to slice headers (the canonical
// sync.Pool shape) so each Put boxes one small pointer rather than
// copying a header into the interface — and staticcheck's SA6002 stays
// quiet without directives.
var (
	arenaPool     = sync.Pool{New: func() any { return &arena{} }}
	nodeChunkPool = sync.Pool{New: func() any { s := make([]Node, nodeChunkSize); return &s }}
	attrChunkPool = sync.Pool{New: func() any { s := make([]Attr, attrChunkSize); return &s }}
	kidChunkPool  = sync.Pool{New: func() any { s := make([]*Node, kidChunkSize); return &s }}
	stackPool     = sync.Pool{New: func() any { s := make([]*Node, 0, 32); return &s }}
)

// arena is a bump allocator for one parsed document: nodes, attribute
// slices, and initial child-pointer slices are carved from pooled
// chunks instead of individual heap allocations, and the whole document
// is returned to the pools in O(chunks) when its owner releases it.
//
// Ownership contract: an arena-backed tree is immutable after parsing
// and must not be referenced after release — ParsedDoc's refcount is
// the single authority on when release happens. A nil *arena degrades
// every method to plain heap allocation (the public Parse path, whose
// trees are GC-owned and live forever).
type arena struct {
	nodes [][]Node
	nodeN int
	attrs [][]Attr
	attrN int
	kids  [][]*Node
	kidN  int
}

func newArena() *arena {
	return arenaPool.Get().(*arena)
}

// release zeroes every chunk (dropping the string references that would
// otherwise pin the source body) and returns them to the pools.
func (a *arena) release() {
	for _, ch := range a.nodes {
		ch := ch
		clear(ch)
		nodeChunkPool.Put(&ch)
	}
	for _, ch := range a.attrs {
		ch := ch
		clear(ch)
		attrChunkPool.Put(&ch)
	}
	for _, ch := range a.kids {
		ch := ch
		clear(ch)
		kidChunkPool.Put(&ch)
	}
	a.nodes, a.attrs, a.kids = a.nodes[:0], a.attrs[:0], a.kids[:0]
	a.nodeN, a.attrN, a.kidN = 0, 0, 0
	arenaPool.Put(a)
}

// newNode carves one zeroed node.
func (a *arena) newNode() *Node {
	if a == nil {
		return &Node{}
	}
	if len(a.nodes) == 0 || a.nodeN == nodeChunkSize {
		a.nodes = append(a.nodes, *nodeChunkPool.Get().(*[]Node))
		a.nodeN = 0
	}
	n := &a.nodes[len(a.nodes)-1][a.nodeN]
	a.nodeN++
	return n
}

// copyAttrs copies a tokenizer's scratch attributes into arena (or, for
// a nil arena, exact-size heap) storage the node can own.
func (a *arena) copyAttrs(src []Attr) []Attr {
	if len(src) == 0 {
		return nil
	}
	if a == nil || len(src) > oversizedAttrs {
		return append([]Attr(nil), src...)
	}
	if len(a.attrs) == 0 || a.attrN+len(src) > attrChunkSize {
		a.attrs = append(a.attrs, *attrChunkPool.Get().(*[]Attr))
		a.attrN = 0
	}
	chunk := a.attrs[len(a.attrs)-1]
	dst := chunk[a.attrN : a.attrN+len(src) : a.attrN+len(src)]
	copy(dst, src)
	a.attrN += len(src)
	return dst
}

// appendChild links c under p, carving p's first child slice from the
// arena; growth past the carved capacity falls back to the ordinary
// heap-doubling append (the abandoned slab slots are reclaimed when the
// arena is released).
func (a *arena) appendChild(p, c *Node) {
	if a != nil && p.Children == nil {
		if len(a.kids) == 0 || a.kidN+kidSliceCap > kidChunkSize {
			a.kids = append(a.kids, *kidChunkPool.Get().(*[]*Node))
			a.kidN = 0
		}
		chunk := a.kids[len(a.kids)-1]
		p.Children = chunk[a.kidN : a.kidN : a.kidN+kidSliceCap]
		a.kidN += kidSliceCap
	}
	p.Children = append(p.Children, c)
}
