package html

import (
	"strings"
)

// NodeType discriminates DOM nodes.
type NodeType uint8

const (
	DocumentNode NodeType = iota
	ElementNode
	TextNode
	CommentNode
)

// Node is a lightweight DOM node.
type Node struct {
	Type     NodeType
	Tag      string
	Attrs    []Attr
	Text     string
	Children []*Node
	Parent   *Node
}

// Attr returns the value of the named attribute.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the attribute value or a default.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// HasAttr reports attribute presence (boolean attributes included).
func (n *Node) HasAttr(name string) bool {
	_, ok := n.Attr(name)
	return ok
}

// voidElements never have children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// Parse builds a tolerant DOM tree from src. It never fails: malformed
// markup degrades to a best-effort tree, matching how the crawler must
// survive the web's tag soup. The returned tree is heap-allocated and
// GC-owned; the crawl hot path uses ParseDoc (arena-backed, cacheable)
// instead.
func Parse(src string) *Node {
	return parseInto(src, nil, nil)
}

// docExtract collects the measurement's three extractions during tree
// construction, replacing the three full-tree FindAll walks the wrapper
// functions perform.
type docExtract struct {
	iframes []*Node
	scripts []*Node
	links   []string
}

// parseInto is the single tree-construction pass shared by Parse and
// ParseDoc: nodes come from the arena (nil = heap), and when ex is
// non-nil the iframe/script/link extractions are recorded as elements
// are created — document order for free, no re-walks.
func parseInto(src string, a *arena, ex *docExtract) *Node {
	doc := a.newNode()
	doc.Type = DocumentNode
	stackp := stackPool.Get().(*[]*Node)
	stack := (*stackp)[:0]
	stack = append(stack, doc)
	defer func() {
		clear(stack[:cap(stack)])
		*stackp = stack[:0]
		stackPool.Put(stackp)
	}()
	z := acquireTokenizer(src)
	defer releaseTokenizer(z)
	for {
		tok := z.Next()
		switch tok.Type {
		case EOFToken:
			return doc
		case TextToken:
			if strings.TrimSpace(tok.Text) == "" {
				continue
			}
			top := stack[len(stack)-1]
			n := a.newNode()
			n.Type, n.Text, n.Parent = TextNode, tok.Text, top
			a.appendChild(top, n)
		case CommentToken:
			top := stack[len(stack)-1]
			n := a.newNode()
			n.Type, n.Text, n.Parent = CommentNode, tok.Text, top
			a.appendChild(top, n)
		case DoctypeToken:
			// Ignored: tree shape is what matters.
		case StartTagToken, SelfClosingTagToken:
			top := stack[len(stack)-1]
			el := a.newNode()
			el.Type, el.Tag, el.Parent = ElementNode, tok.Tag, top
			el.Attrs = a.copyAttrs(tok.Attrs)
			a.appendChild(top, el)
			if ex != nil {
				switch el.Tag {
				case "iframe":
					ex.iframes = append(ex.iframes, el)
				case "script":
					ex.scripts = append(ex.scripts, el)
				case "a":
					if href, ok := el.Attr("href"); ok && strings.TrimSpace(href) != "" {
						ex.links = append(ex.links, strings.TrimSpace(href))
					}
				}
			}
			if tok.Type == StartTagToken && !voidElements[tok.Tag] {
				stack = append(stack, el)
			}
		case EndTagToken:
			// Pop to the nearest matching open element; ignore strays.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.Tag {
					stack = stack[:i]
					break
				}
			}
		}
	}
}

// Walk visits every node in document order. Returning false from fn
// skips the node's children.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// FindAll returns every element with the given tag, in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(node *Node) bool {
		if node.Type == ElementNode && node.Tag == tag {
			out = append(out, node)
		}
		return true
	})
	return out
}

// First returns the first element with the given tag, or nil.
func (n *Node) First(tag string) *Node {
	var found *Node
	n.Walk(func(node *Node) bool {
		if found != nil {
			return false
		}
		if node.Type == ElementNode && node.Tag == tag {
			found = node
			return false
		}
		return true
	})
	return found
}

// InnerText concatenates the text beneath the node.
func (n *Node) InnerText() string {
	// Fast path: one text child (every raw-text element — script, style,
	// title — parses to this shape) needs no builder copy.
	if len(n.Children) == 1 {
		if c := n.Children[0]; c.Type == TextNode && len(c.Children) == 0 {
			return c.Text
		}
	}
	var b strings.Builder
	n.Walk(func(node *Node) bool {
		if node.Type == TextNode {
			b.WriteString(node.Text)
		}
		return true
	})
	return b.String()
}

// IframeAttributes is the paper's predefined list of <iframe> attributes
// collected for every embedded document (§3.1.2).
var IframeAttributes = []string{"id", "name", "class", "src", "allow", "sandbox", "srcdoc", "loading"}

// Iframe is one extracted iframe element with the collected attributes.
type Iframe struct {
	Src     string
	Allow   string
	Sandbox string
	Srcdoc  string
	Loading string
	ID      string
	Name    string
	Class   string
	// HasAllow distinguishes allow="" from no attribute at all.
	HasAllow bool
	// HasSrcdoc likewise.
	HasSrcdoc bool
	// HasSandbox distinguishes the (fully sandboxing) bare sandbox
	// attribute from its absence.
	HasSandbox bool
}

// Lazy reports whether the iframe is lazy-loaded (loading="lazy"),
// which the crawler must scroll to in order to trigger loading (§3.2).
func (f Iframe) Lazy() bool { return strings.EqualFold(f.Loading, "lazy") }

// iframeOf extracts the paper's attribute list from one iframe element —
// the shared record builder of the Iframes wrapper and the single-walk
// ParseDoc extraction.
func iframeOf(el *Node) Iframe {
	f := Iframe{
		Src:     el.AttrOr("src", ""),
		Allow:   el.AttrOr("allow", ""),
		Sandbox: el.AttrOr("sandbox", ""),
		Srcdoc:  el.AttrOr("srcdoc", ""),
		Loading: el.AttrOr("loading", ""),
		ID:      el.AttrOr("id", ""),
		Name:    el.AttrOr("name", ""),
		Class:   el.AttrOr("class", ""),
	}
	f.HasAllow = el.HasAttr("allow")
	f.HasSrcdoc = el.HasAttr("srcdoc")
	f.HasSandbox = el.HasAttr("sandbox")
	return f
}

// Iframes extracts all iframe elements from the document. (Thin wrapper
// over the shared extraction; ParseDoc collects the same records in a
// single pass during parsing.)
func Iframes(doc *Node) []Iframe {
	var out []Iframe
	for _, el := range doc.FindAll("iframe") {
		out = append(out, iframeOf(el))
	}
	return out
}

// Links extracts the href targets of all anchor elements — the input
// for beyond-landing-page crawling (the paper's §6.1 limitation).
func Links(doc *Node) []string {
	var out []string
	for _, a := range doc.FindAll("a") {
		if href, ok := a.Attr("href"); ok && strings.TrimSpace(href) != "" {
			out = append(out, strings.TrimSpace(href))
		}
	}
	return out
}

// Script is one extracted script: external (Src set) or inline (Body).
type Script struct {
	Src    string
	Body   string
	Inline bool
}

// scriptOf extracts one script element — the shared record builder of
// the Scripts wrapper and the single-walk ParseDoc extraction.
func scriptOf(el *Node) Script {
	if src, ok := el.Attr("src"); ok && strings.TrimSpace(src) != "" {
		return Script{Src: strings.TrimSpace(src)}
	}
	return Script{Body: el.InnerText(), Inline: true}
}

// Scripts extracts all classic scripts from the document. The tokenizer
// treats <script> as raw text, so inline bodies survive intact even when
// they contain '<'.
func Scripts(doc *Node) []Script {
	var out []Script
	for _, el := range doc.FindAll("script") {
		out = append(out, scriptOf(el))
	}
	return out
}
