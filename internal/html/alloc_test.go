package html

import "testing"

// Allocation pins for the hot paths. These are ceilings, not exact
// counts — a small regression margin is built in so innocent compiler
// changes don't flake, while an accidental per-node or per-token heap
// allocation (the regressions this PR removes) blows well past them.
func TestHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc pins need a quiet heap")
	}
	src := `<div class="row"><iframe src="/f" allow="camera"></iframe><script src="/s.js"></script><a href="/l">x</a><p>text &amp; more</p></div>`

	// Warm cache hit: one alloc (the []byte copy feeding sha256). A tree
	// rebuild would cost dozens.
	c := NewParseCache(0, 0)
	c.Parse(src).Release()
	if got := testing.AllocsPerRun(500, func() {
		c.Parse(src).Release()
	}); got > 3 {
		t.Errorf("warm ParseCache.Parse: %.1f allocs/op, want <= 3", got)
	}

	// Cold arena parse of a ~140-byte document: a handful of slab/header
	// allocations, amortized to near zero once pools warm up. Measured at
	// 11; pin with margin. The old per-node path cost 30+.
	if got := testing.AllocsPerRun(500, func() {
		ParseDoc(src).Release()
	}); got > 20 {
		t.Errorf("cold ParseDoc: %.1f allocs/op, want <= 20", got)
	}

	// Entity decoding must return the input substring unchanged when
	// there is no '&' — zero allocations.
	if got := testing.AllocsPerRun(500, func() {
		_ = DecodeEntities("no references here at all")
	}); got != 0 {
		t.Errorf("DecodeEntities without '&': %.1f allocs/op, want 0", got)
	}

	// Interning an uppercase common name hits the stack-buffer fast path.
	if got := testing.AllocsPerRun(500, func() {
		_ = internLower("IFRAME")
		_ = internLower("allow")
	}); got != 0 {
		t.Errorf("internLower on common names: %.1f allocs/op, want 0", got)
	}

	// The raw-text close-tag scan allocates nothing.
	if got := testing.AllocsPerRun(500, func() {
		_ = indexFold("aaaa</scrip</script>bbb", "</script")
	}); got != 0 {
		t.Errorf("indexFold: %.1f allocs/op, want 0", got)
	}
}
