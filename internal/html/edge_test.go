package html

import (
	"strings"
	"testing"
)

func TestAttributeEdgeCases(t *testing.T) {
	tests := []struct {
		src  string
		attr string
		want string
	}{
		{`<div data-x = "spaced equals">`, "data-x", "spaced equals"},
		{`<div a='single "quotes" inside'>`, "a", `single "quotes" inside`},
		{`<div a=unquoted-value>`, "a", "unquoted-value"},
		{`<div a="">`, "a", ""},
		{`<div A="upper key">`, "a", "upper key"},
		{`<div a="&#x27;quoted&#x27;">`, "a", "'quoted'"},
	}
	for _, tt := range tests {
		doc := Parse(tt.src)
		div := doc.First("div")
		if div == nil {
			t.Fatalf("no div in %q", tt.src)
		}
		if got, _ := div.Attr(tt.attr); got != tt.want {
			t.Errorf("%s: attr %q = %q; want %q", tt.src, tt.attr, got, tt.want)
		}
	}
}

func TestSelfClosingAndNesting(t *testing.T) {
	doc := Parse(`<div><iframe src="/a"/><p>after</p></div>`)
	// A self-closing iframe must not swallow the paragraph.
	p := doc.First("p")
	if p == nil {
		t.Fatal("p missing after self-closing iframe")
	}
	if len(Iframes(doc)) != 1 {
		t.Errorf("iframes: %d", len(Iframes(doc)))
	}
}

func TestMismatchedCloseTags(t *testing.T) {
	doc := Parse(`<div><span>text</div></span><p>tail</p>`)
	if doc.First("p") == nil {
		t.Error("recovery after mismatched close tags failed")
	}
}

func TestScriptWithHTMLLookalikes(t *testing.T) {
	// Script bodies containing strings that look like tags must stay
	// intact (only </script> terminates).
	body := `var markup = "<iframe src='https://x.example'></iframe>"; var done = true;`
	doc := Parse("<script>" + body + "</script>")
	scripts := Scripts(doc)
	if len(scripts) != 1 || !strings.Contains(scripts[0].Body, "</iframe>") {
		t.Fatalf("scripts: %+v", scripts)
	}
	// Crucially, the iframe inside the string must NOT become a frame.
	if len(Iframes(doc)) != 0 {
		t.Error("tag-lookalikes inside script bodies leaked into the DOM")
	}
}

func TestTitleRawText(t *testing.T) {
	doc := Parse(`<title>a < b</title><div id="d"></div>`)
	title := doc.First("title")
	if title == nil || !strings.Contains(title.InnerText(), "a < b") {
		t.Errorf("title raw text: %+v", title)
	}
	if doc.First("div") == nil {
		t.Error("parsing must continue after title")
	}
}

func TestLinksExtraction(t *testing.T) {
	doc := Parse(`
	<a href="/stores">Stores</a>
	<a href="https://other.example/x">External</a>
	<a>no href</a>
	<a href="  /spaced  ">spaced</a>`)
	links := Links(doc)
	if len(links) != 3 {
		t.Fatalf("links: %v", links)
	}
	if links[0] != "/stores" || links[2] != "/spaced" {
		t.Errorf("links: %v", links)
	}
}

func TestDeeplyNestedDocument(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		b.WriteString("<div>")
	}
	b.WriteString(`<iframe src="/deep"></iframe>`)
	doc := Parse(b.String())
	if len(Iframes(doc)) != 1 {
		t.Error("deeply nested iframe lost")
	}
}

func TestIframeAttributesListMatchesPaper(t *testing.T) {
	// §3.1.2's predefined attribute list must be exactly represented.
	want := []string{"id", "name", "class", "src", "allow", "sandbox", "srcdoc", "loading"}
	if len(IframeAttributes) != len(want) {
		t.Fatalf("IframeAttributes = %v", IframeAttributes)
	}
	for i, a := range want {
		if IframeAttributes[i] != a {
			t.Errorf("attr %d = %q; want %q", i, IframeAttributes[i], a)
		}
	}
}
