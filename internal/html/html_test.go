package html

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizerBasics(t *testing.T) {
	z := NewTokenizer(`<!DOCTYPE html><html><head><title>Hi</title></head><body class="main">Hello &amp; bye<br/></body></html>`)
	var types []TokenType
	var tags []string
	for {
		tok := z.Next()
		if tok.Type == EOFToken {
			break
		}
		types = append(types, tok.Type)
		tags = append(tags, tok.Tag)
	}
	if types[0] != DoctypeToken {
		t.Errorf("first token: %v", types[0])
	}
	joined := strings.Join(tags, ",")
	if !strings.Contains(joined, "html,head,title") {
		t.Errorf("tags: %s", joined)
	}
}

func TestTokenizerAttributes(t *testing.T) {
	z := NewTokenizer(`<iframe src="https://a.com/x?a=1&amp;b=2" allow='camera; microphone *' loading=lazy sandbox></iframe>`)
	tok := z.Next()
	if tok.Type != StartTagToken || tok.Tag != "iframe" {
		t.Fatalf("token: %+v", tok)
	}
	if v, _ := tok.Attr("src"); v != "https://a.com/x?a=1&b=2" {
		t.Errorf("src: %q (entity decoding)", v)
	}
	if v, _ := tok.Attr("allow"); v != "camera; microphone *" {
		t.Errorf("allow: %q", v)
	}
	if v, _ := tok.Attr("loading"); v != "lazy" {
		t.Errorf("unquoted value: %q", v)
	}
	if _, ok := tok.Attr("sandbox"); !ok {
		t.Error("boolean attribute missing")
	}
	if _, ok := tok.Attr("absent"); ok {
		t.Error("phantom attribute")
	}
}

func TestScriptRawText(t *testing.T) {
	src := `<script>if (a < b && x > y) { navigator.permissions.query({name: "camera"}); }</script><p>after</p>`
	doc := Parse(src)
	scripts := Scripts(doc)
	if len(scripts) != 1 {
		t.Fatalf("scripts: %d", len(scripts))
	}
	if !strings.Contains(scripts[0].Body, "a < b && x > y") {
		t.Errorf("script body mangled: %q", scripts[0].Body)
	}
	if !strings.Contains(scripts[0].Body, `navigator.permissions.query`) {
		t.Errorf("script body: %q", scripts[0].Body)
	}
	if doc.First("p") == nil {
		t.Error("parsing must resume after </script>")
	}
}

func TestScriptCaseInsensitiveClose(t *testing.T) {
	doc := Parse(`<SCRIPT>var x = 1;</ScRiPt><div id="d"></div>`)
	if len(Scripts(doc)) != 1 {
		t.Error("uppercase script not extracted")
	}
	if doc.First("div") == nil {
		t.Error("close tag case-insensitivity broken")
	}
}

func TestExternalAndInlineScripts(t *testing.T) {
	doc := Parse(`<script src="https://cdn.example/lib.js"></script><script>inline()</script>`)
	scripts := Scripts(doc)
	if len(scripts) != 2 {
		t.Fatalf("scripts: %d", len(scripts))
	}
	if scripts[0].Src != "https://cdn.example/lib.js" || scripts[0].Inline {
		t.Errorf("external script: %+v", scripts[0])
	}
	if !scripts[1].Inline || scripts[1].Body != "inline()" {
		t.Errorf("inline script: %+v", scripts[1])
	}
}

func TestIframeExtraction(t *testing.T) {
	src := `
	<iframe id="chat" name="lc" class="widget corner" src="https://widget.livechatinc.example/embed"
	        allow="clipboard-read; microphone *; camera *" loading="lazy"></iframe>
	<iframe srcdoc="&lt;p&gt;local&lt;/p&gt;" allow=""></iframe>
	<iframe src="about:blank"></iframe>`
	frames := Iframes(Parse(src))
	if len(frames) != 3 {
		t.Fatalf("frames: %d", len(frames))
	}
	f := frames[0]
	if f.ID != "chat" || f.Name != "lc" || f.Class != "widget corner" {
		t.Errorf("identity attrs: %+v", f)
	}
	if !f.Lazy() {
		t.Error("loading=lazy not detected")
	}
	if !f.HasAllow || !strings.Contains(f.Allow, "microphone *") {
		t.Errorf("allow: %+v", f)
	}
	if !frames[1].HasSrcdoc || frames[1].Srcdoc != "<p>local</p>" {
		t.Errorf("srcdoc: %+v", frames[1])
	}
	if !frames[1].HasAllow || frames[1].Allow != "" {
		t.Error("empty allow attribute must still register as present")
	}
	if frames[2].HasAllow {
		t.Error("third frame has no allow attribute")
	}
}

func TestParseTolerance(t *testing.T) {
	// Tag soup must not panic and should produce a sensible tree.
	cases := []string{
		"<div><p>unclosed",
		"</stray><div></div>",
		"<div attr=<<>>",
		"<",
		"<div a='x",
		"<!-- unterminated comment",
		"<script>never closed",
		"<div>a<b>c</div>d</b>",
		"",
	}
	for _, src := range cases {
		doc := Parse(src)
		if doc == nil {
			t.Errorf("Parse(%q) = nil", src)
		}
	}
}

func TestVoidElements(t *testing.T) {
	doc := Parse(`<div><img src="x.png"><br><p>text</p></div>`)
	div := doc.First("div")
	if div == nil {
		t.Fatal("no div")
	}
	// img and br must not swallow the p.
	p := doc.First("p")
	if p == nil || p.Parent.Tag != "div" {
		t.Error("void elements must not take children")
	}
}

func TestNestedIframesDocumentOrder(t *testing.T) {
	src := `<iframe src="https://one.example"></iframe><div><iframe src="https://two.example"></iframe></div>`
	frames := Iframes(Parse(src))
	if len(frames) != 2 || frames[0].Src != "https://one.example" || frames[1].Src != "https://two.example" {
		t.Errorf("order: %+v", frames)
	}
}

func TestDecodeEntities(t *testing.T) {
	tests := []struct{ in, want string }{
		{"a &amp; b", "a & b"},
		{"&lt;div&gt;", "<div>"},
		{"&quot;x&quot;", `"x"`},
		{"&#65;&#x42;", "AB"},
		{"no entities", "no entities"},
		{"dangling &amp", "dangling &amp"},
		{"&unknown;", "&unknown;"},
		{"&#;", "&#;"},
	}
	for _, tt := range tests {
		if got := DecodeEntities(tt.in); got != tt.want {
			t.Errorf("DecodeEntities(%q) = %q; want %q", tt.in, got, tt.want)
		}
	}
}

func TestComment(t *testing.T) {
	doc := Parse(`<!-- hello --><div></div>`)
	if len(doc.Children) != 2 || doc.Children[0].Type != CommentNode ||
		strings.TrimSpace(doc.Children[0].Text) != "hello" {
		t.Errorf("comment: %+v", doc.Children)
	}
}

func TestWalkSkipsChildrenOnFalse(t *testing.T) {
	doc := Parse(`<div><span><b>deep</b></span></div>`)
	var visited []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			visited = append(visited, n.Tag)
			return n.Tag != "span"
		}
		return true
	})
	for _, tag := range visited {
		if tag == "b" {
			t.Error("Walk must skip children when fn returns false")
		}
	}
}

// Property: the tokenizer always terminates and never panics on
// arbitrary input (guaranteed progress).
func TestTokenizerTerminates(t *testing.T) {
	f := func(s string) bool {
		z := NewTokenizer(s)
		for i := 0; i < len(s)+10; i++ {
			if z.Next().Type == EOFToken {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Parse never returns nil and the tree has no text nodes with
// element children.
func TestParseShapeProperty(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		ok := doc != nil
		doc.Walk(func(n *Node) bool {
			if n.Type == TextNode && len(n.Children) > 0 {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParsePage(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html><html><body>")
	for i := 0; i < 50; i++ {
		sb.WriteString(`<div class="row"><iframe src="https://w.example/e" allow="camera; microphone"></iframe><script>navigator.permissions.query({name:'camera'})</script></div>`)
	}
	sb.WriteString("</body></html>")
	page := sb.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := Parse(page)
		if len(Iframes(doc)) != 50 {
			b.Fatal("bad parse")
		}
	}
}
