package html

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// extractCorpus is the shared set of documents the single-walk
// extraction must agree on with the three-walk wrappers — tag soup,
// raw text, self-closing frames, every edge the wrappers tolerate.
var extractCorpus = []string{
	"",
	"plain text only",
	`<!DOCTYPE html><html><head><title>Hi</title></head><body><p>x</p></body></html>`,
	`<iframe id="chat" name="lc" class="widget corner" src="https://widget.example/embed"
	  allow="clipboard-read; microphone *; camera *" loading="lazy"></iframe>
	 <iframe srcdoc="&lt;p&gt;local&lt;/p&gt;" allow=""></iframe>
	 <iframe src="about:blank" sandbox></iframe>`,
	`<script src="https://cdn.example/lib.js"></script><script>inline()</script>`,
	`<script src="  "></script>`, // whitespace src: inline, not external
	`<script>   </script>`,       // whitespace body collapses to ""
	`<script/>`,
	`<SCRIPT>var x = 1;</ScRiPt><div id="d"></div>`,
	`<script>if (a < b && x > y) { q("<iframe src='https://x.example'></iframe>"); }</script><p>after</p>`,
	`<script>never closed`,
	`<a href="/stores">Stores</a><a href="https://other.example/x">External</a><a>no href</a><a href="  /spaced  ">spaced</a>`,
	`<div><iframe src="/a"/><p>after</p></div>`,
	`<div><span>text</div></span><p>tail</p>`,
	`<div><p>unclosed`,
	`</stray><div></div>`,
	`<div attr=<<>>`,
	`<`,
	`<div a='x`,
	`<!-- unterminated comment`,
	`<div>a<b>c</div>d</b>`,
	`<noscript><a href="/hidden">x</a><iframe src="/h"></iframe></noscript><a href="/seen">y</a>`,
	`<title>a < b</title><iframe src="/t"></iframe>`,
	`<IFRAME SRC="/UP" ALLOW="camera"></IFRAME>`,
	`<div><iframe src="/outer"><iframe src="/inner"></iframe></iframe></div>`,
}

// TestParseDocMatchesWrappers pins the tentpole's core equivalence: the
// single-walk extraction built during parsing must agree exactly with
// the three FindAll-walk wrapper functions over the same tree.
func TestParseDocMatchesWrappers(t *testing.T) {
	for i, src := range extractCorpus {
		tree := Parse(src)
		wantIframes := Iframes(tree)
		wantScripts := Scripts(tree)
		wantLinks := Links(tree)

		pd := ParseDoc(src)
		if !reflect.DeepEqual(pd.Iframes, wantIframes) {
			t.Errorf("case %d: iframes differ\n single-walk: %+v\n wrappers:    %+v", i, pd.Iframes, wantIframes)
		}
		if !reflect.DeepEqual(pd.Scripts, wantScripts) {
			t.Errorf("case %d: scripts differ\n single-walk: %+v\n wrappers:    %+v", i, pd.Scripts, wantScripts)
		}
		if !reflect.DeepEqual(pd.Links, wantLinks) {
			t.Errorf("case %d: links differ\n single-walk: %v\n wrappers:    %v", i, pd.Links, wantLinks)
		}
		// The arena-backed tree must also match the wrappers when walked
		// directly (same shape, same attributes).
		if got := Iframes(pd.Tree); !reflect.DeepEqual(got, wantIframes) {
			t.Errorf("case %d: arena tree iframes differ: %+v vs %+v", i, got, wantIframes)
		}
		if pd.SrcLen != len(src) {
			t.Errorf("case %d: SrcLen = %d, want %d", i, pd.SrcLen, len(src))
		}
		pd.Release()
	}
}

// TestParseDocReleasePoisonsTree pins the ownership contract: after the
// last Release the tree pointer is gone (use-after-release trips on nil
// instead of silently reading recycled nodes), while the extracted
// value slices stay valid.
func TestParseDocReleasePoisonsTree(t *testing.T) {
	pd := ParseDoc(`<iframe src="/x" allow="camera"></iframe><a href="/l">l</a>`)
	iframes, links := pd.Iframes, pd.Links
	pd.Release()
	if pd.Tree != nil {
		t.Error("Tree must be nil after the last Release")
	}
	if len(iframes) != 1 || iframes[0].Src != "/x" {
		t.Errorf("extracted iframes must outlive release: %+v", iframes)
	}
	if len(links) != 1 || links[0] != "/l" {
		t.Errorf("extracted links must outlive release: %v", links)
	}
	// Releasing a nil doc must be a no-op.
	var nilDoc *ParsedDoc
	nilDoc.Release()
}

// TestArenaRecycling proves released arenas actually return to the
// pools: parse the same document repeatedly with interleaved releases
// and verify the trees stay correct even as chunks are reused.
func TestArenaRecycling(t *testing.T) {
	src := `<div><iframe src="/a" allow="camera"></iframe><script>s()</script><a href="/l">x</a></div>`
	for i := 0; i < 100; i++ {
		pd := ParseDoc(src)
		if len(pd.Iframes) != 1 || pd.Iframes[0].Src != "/a" {
			t.Fatalf("iteration %d: iframes %+v", i, pd.Iframes)
		}
		if pd.Tree.First("div") == nil {
			t.Fatalf("iteration %d: tree lost its div", i)
		}
		pd.Release()
	}
}

// TestParsedDocImmutableUnderConcurrency is the immutability audit: a
// shared ParsedDoc walked and extracted by many goroutines at once must
// never race (the -race CI run enforces it) and must read identically
// throughout.
func TestParsedDocImmutableUnderConcurrency(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, `<div class="row"><iframe src="/f%d" allow="camera"></iframe><script>go%d()</script><a href="/l%d">x</a></div>`, i, i, i)
	}
	src := sb.String()
	pd := ParseDoc(src)
	defer pd.Release()
	want := Iframes(pd.Tree)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := Iframes(pd.Tree); !reflect.DeepEqual(got, want) {
					t.Error("concurrent walk saw a different tree")
					return
				}
				if len(pd.Scripts) != 40 || len(pd.Links) != 40 {
					t.Error("extractions changed under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
}
