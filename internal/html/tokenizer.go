// Package html is a from-scratch HTML tokenizer and lightweight DOM
// builder — the subset of HTML parsing the measurement needs: element
// structure, attributes (the paper's predefined iframe attribute list:
// id, name, class, src, allow, sandbox, srcdoc, loading), raw-text
// handling for <script> bodies (both for static analysis and for
// execution by the mini browser), comments, and basic entity decoding.
//
// It is intentionally not a full HTML5 tree construction algorithm: the
// crawler needs a faithful *tokenizer* and a tolerant tree, not adoption
// agency semantics.
package html

import (
	"strings"
)

// TokenType discriminates tokens.
type TokenType uint8

const (
	TextToken TokenType = iota
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
	EOFToken
)

// Attr is one attribute, with its value entity-decoded.
type Attr struct {
	Key   string
	Value string
}

// Token is one lexical token.
type Token struct {
	Type  TokenType
	Tag   string // lower-cased tag name for tag tokens
	Text  string // text, comment or doctype content
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it exists.
func (t Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == name {
			return a.Value, true
		}
	}
	return "", false
}

// rawTextTags are elements whose content is raw text until the matching
// end tag.
var rawTextTags = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
	"xmp": true, "noscript": true,
}

// Tokenizer walks an HTML document byte-wise.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when set, makes the tokenizer consume everything until the
	// matching </rawTag> as a single text token.
	rawTag string
}

// NewTokenizer tokenizes src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token; EOFToken at the end of input.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.src) {
		return Token{Type: EOFToken}
	}
	if z.rawTag != "" {
		return z.rawText()
	}
	if z.src[z.pos] == '<' {
		return z.tag()
	}
	return z.text()
}

func (z *Tokenizer) text() Token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Text: DecodeEntities(z.src[start:z.pos])}
}

// rawText consumes text up to the matching close tag of z.rawTag.
func (z *Tokenizer) rawText() Token {
	closeTag := "</" + z.rawTag
	idx := indexFold(z.src[z.pos:], closeTag)
	tag := z.rawTag
	z.rawTag = ""
	if idx < 0 {
		text := z.src[z.pos:]
		z.pos = len(z.src)
		return Token{Type: TextToken, Text: text, Tag: tag}
	}
	text := z.src[z.pos : z.pos+idx]
	z.pos += idx
	return Token{Type: TextToken, Text: text, Tag: tag}
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(haystack, needle string) int {
	n := len(needle)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(haystack); i++ {
		if strings.EqualFold(haystack[i:i+n], needle) {
			return i
		}
	}
	return -1
}

func (z *Tokenizer) tag() Token {
	// z.src[z.pos] == '<'
	if strings.HasPrefix(z.src[z.pos:], "<!--") {
		return z.comment()
	}
	if strings.HasPrefix(z.src[z.pos:], "<!") {
		return z.doctype()
	}
	if strings.HasPrefix(z.src[z.pos:], "</") {
		return z.endTag()
	}
	if z.pos+1 >= len(z.src) || !isTagNameStart(z.src[z.pos+1]) {
		// A lone '<' followed by a non-letter is text.
		z.pos++
		return Token{Type: TextToken, Text: "<"}
	}
	return z.startTag()
}

func isTagNameStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isTagNameChar(c byte) bool {
	return isTagNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func (z *Tokenizer) comment() Token {
	z.pos += 4 // <!--
	end := strings.Index(z.src[z.pos:], "-->")
	var text string
	if end < 0 {
		text = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		text = z.src[z.pos : z.pos+end]
		z.pos += end + 3
	}
	return Token{Type: CommentToken, Text: text}
}

func (z *Tokenizer) doctype() Token {
	z.pos += 2 // <!
	end := strings.IndexByte(z.src[z.pos:], '>')
	var text string
	if end < 0 {
		text = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		text = z.src[z.pos : z.pos+end]
		z.pos += end + 1
	}
	return Token{Type: DoctypeToken, Text: strings.TrimSpace(text)}
}

func (z *Tokenizer) endTag() Token {
	z.pos += 2 // </
	start := z.pos
	for z.pos < len(z.src) && isTagNameChar(z.src[z.pos]) {
		z.pos++
	}
	tag := strings.ToLower(z.src[start:z.pos])
	// Skip to '>'.
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++
	}
	return Token{Type: EndTagToken, Tag: tag}
}

func (z *Tokenizer) startTag() Token {
	z.pos++ // <
	start := z.pos
	for z.pos < len(z.src) && isTagNameChar(z.src[z.pos]) {
		z.pos++
	}
	tok := Token{Type: StartTagToken, Tag: strings.ToLower(z.src[start:z.pos])}
	for {
		for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
			z.pos++
		}
		if z.pos >= len(z.src) {
			break
		}
		c := z.src[z.pos]
		if c == '>' {
			z.pos++
			break
		}
		if c == '/' {
			z.pos++
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				tok.Type = SelfClosingTagToken
				break
			}
			continue
		}
		key, val, ok := z.attribute()
		if !ok {
			break
		}
		tok.Attrs = append(tok.Attrs, Attr{Key: key, Value: val})
	}
	if tok.Type == StartTagToken && rawTextTags[tok.Tag] {
		z.rawTag = tok.Tag
	}
	return tok
}

func (z *Tokenizer) attribute() (key, val string, ok bool) {
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if isSpace(c) || c == '=' || c == '>' || c == '/' {
			break
		}
		z.pos++
	}
	if z.pos == start {
		// Unparseable character; skip it to guarantee progress.
		z.pos++
		return "", "", false
	}
	key = strings.ToLower(z.src[start:z.pos])
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
	if z.pos >= len(z.src) || z.src[z.pos] != '=' {
		return key, "", true // boolean attribute
	}
	z.pos++ // =
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
	if z.pos >= len(z.src) {
		return key, "", true
	}
	switch quote := z.src[z.pos]; quote {
	case '"', '\'':
		z.pos++
		vstart := z.pos
		for z.pos < len(z.src) && z.src[z.pos] != quote {
			z.pos++
		}
		val = z.src[vstart:z.pos]
		if z.pos < len(z.src) {
			z.pos++
		}
	default:
		vstart := z.pos
		for z.pos < len(z.src) && !isSpace(z.src[z.pos]) && z.src[z.pos] != '>' {
			z.pos++
		}
		val = z.src[vstart:z.pos]
	}
	return key, DecodeEntities(val), true
}

// entities is the minimal named-entity table the measurement needs.
var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "copy": "©", "mdash": "—", "hellip": "…",
}

// DecodeEntities decodes named and numeric character references.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 12 {
			b.WriteByte(c)
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if decoded, ok := decodeEntity(name); ok {
			b.WriteString(decoded)
			i += semi + 1
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func decodeEntity(name string) (string, bool) {
	if v, ok := entities[name]; ok {
		return v, true
	}
	if strings.HasPrefix(name, "#") {
		digits := name[1:]
		base := 10
		if strings.HasPrefix(digits, "x") || strings.HasPrefix(digits, "X") {
			digits = digits[1:]
			base = 16
		}
		if digits == "" {
			return "", false
		}
		var n rune
		for _, d := range digits {
			var v rune
			switch {
			case d >= '0' && d <= '9':
				v = d - '0'
			case base == 16 && d >= 'a' && d <= 'f':
				v = d - 'a' + 10
			case base == 16 && d >= 'A' && d <= 'F':
				v = d - 'A' + 10
			default:
				return "", false
			}
			n = n*rune(base) + v
			if n > 0x10ffff {
				return "", false
			}
		}
		return string(n), true
	}
	return "", false
}
