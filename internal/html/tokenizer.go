// Package html is a from-scratch HTML tokenizer and lightweight DOM
// builder — the subset of HTML parsing the measurement needs: element
// structure, attributes (the paper's predefined iframe attribute list:
// id, name, class, src, allow, sandbox, srcdoc, loading), raw-text
// handling for <script> bodies (both for static analysis and for
// execution by the mini browser), comments, and basic entity decoding.
//
// It is intentionally not a full HTML5 tree construction algorithm: the
// crawler needs a faithful *tokenizer* and a tolerant tree, not adoption
// agency semantics.
package html

import (
	"strings"
	"sync"
)

// TokenType discriminates tokens.
type TokenType uint8

const (
	TextToken TokenType = iota
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
	EOFToken
)

// Attr is one attribute, with its value entity-decoded.
type Attr struct {
	Key   string
	Value string
}

// Token is one lexical token.
type Token struct {
	Type  TokenType
	Tag   string // lower-cased tag name for tag tokens
	Text  string // text, comment or doctype content
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it exists.
func (t Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == name {
			return a.Value, true
		}
	}
	return "", false
}

// rawTextTags are elements whose content is raw text until the matching
// end tag.
var rawTextTags = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
	"xmp": true, "noscript": true,
}

// Tokenizer walks an HTML document byte-wise.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when set, makes the tokenizer consume everything until the
	// matching </rawTag> as a single text token.
	rawTag string
	// scratch accumulates attributes of the tag being lexed. In reuse
	// mode (the pooled parse path) the emitted Token aliases it — valid
	// only until the next call to Next — and the tree builder copies it
	// into arena storage; otherwise each token gets an exact-size copy.
	scratch    []Attr
	reuseAttrs bool
}

// NewTokenizer tokenizes src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// tokenizerPool recycles Tokenizer structs (and their attribute scratch
// buffers) across parses — the per-parse state is three words plus a
// slice that would otherwise be reallocated for every document.
var tokenizerPool = sync.Pool{New: func() any { return &Tokenizer{} }}

// acquireTokenizer returns a pooled tokenizer in attribute-reuse mode;
// callers own it until releaseTokenizer.
func acquireTokenizer(src string) *Tokenizer {
	z := tokenizerPool.Get().(*Tokenizer)
	z.src, z.pos, z.rawTag = src, 0, ""
	z.reuseAttrs = true
	return z
}

// releaseTokenizer drops the tokenizer's references to the source (so a
// pooled tokenizer cannot pin a multi-megabyte body) and returns it.
func releaseTokenizer(z *Tokenizer) {
	z.src, z.rawTag = "", ""
	clear(z.scratch[:cap(z.scratch)])
	z.scratch = z.scratch[:0]
	tokenizerPool.Put(z)
}

// Next returns the next token; EOFToken at the end of input.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.src) {
		return Token{Type: EOFToken}
	}
	if z.rawTag != "" {
		return z.rawText()
	}
	if z.src[z.pos] == '<' {
		return z.tag()
	}
	return z.text()
}

func (z *Tokenizer) text() Token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Text: DecodeEntities(z.src[start:z.pos])}
}

// rawText consumes text up to the matching close tag of z.rawTag.
func (z *Tokenizer) rawText() Token {
	closeTag := "</" + z.rawTag
	idx := indexFold(z.src[z.pos:], closeTag)
	tag := z.rawTag
	z.rawTag = ""
	if idx < 0 {
		text := z.src[z.pos:]
		z.pos = len(z.src)
		return Token{Type: TextToken, Text: text, Tag: tag}
	}
	text := z.src[z.pos : z.pos+idx]
	z.pos += idx
	return Token{Type: TextToken, Text: text, Tag: tag}
}

// indexFold is a case-insensitive strings.Index for ASCII needles. The
// scan skips between first-byte candidates with strings.IndexByte (both
// cases) instead of running EqualFold at every offset, so a megabyte
// raw-text body full of near-miss prefixes costs one memchr sweep, not
// an O(n·m) fold comparison per byte.
func indexFold(haystack, needle string) int {
	n := len(needle)
	if n == 0 {
		return 0
	}
	lo, up := needle[0], needle[0]
	switch {
	case lo >= 'a' && lo <= 'z':
		up = lo - ('a' - 'A')
	case lo >= 'A' && lo <= 'Z':
		lo = up + ('a' - 'A')
	}
	for i := 0; i+n <= len(haystack); {
		if c := haystack[i]; c != lo && c != up {
			rest := haystack[i+1:]
			j := strings.IndexByte(rest, lo)
			if up != lo {
				if k := strings.IndexByte(rest, up); k >= 0 && (j < 0 || k < j) {
					j = k
				}
			}
			if j < 0 {
				return -1
			}
			i += 1 + j
			if i+n > len(haystack) {
				return -1
			}
		}
		if strings.EqualFold(haystack[i:i+n], needle) {
			return i
		}
		i++
	}
	return -1
}

func (z *Tokenizer) tag() Token {
	// z.src[z.pos] == '<'
	if strings.HasPrefix(z.src[z.pos:], "<!--") {
		return z.comment()
	}
	if strings.HasPrefix(z.src[z.pos:], "<!") {
		return z.doctype()
	}
	if strings.HasPrefix(z.src[z.pos:], "</") {
		return z.endTag()
	}
	if z.pos+1 >= len(z.src) || !isTagNameStart(z.src[z.pos+1]) {
		// A lone '<' followed by a non-letter is text.
		z.pos++
		return Token{Type: TextToken, Text: "<"}
	}
	return z.startTag()
}

func isTagNameStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isTagNameChar(c byte) bool {
	return isTagNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func (z *Tokenizer) comment() Token {
	z.pos += 4 // <!--
	end := strings.Index(z.src[z.pos:], "-->")
	var text string
	if end < 0 {
		text = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		text = z.src[z.pos : z.pos+end]
		z.pos += end + 3
	}
	return Token{Type: CommentToken, Text: text}
}

func (z *Tokenizer) doctype() Token {
	z.pos += 2 // <!
	end := strings.IndexByte(z.src[z.pos:], '>')
	var text string
	if end < 0 {
		text = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		text = z.src[z.pos : z.pos+end]
		z.pos += end + 1
	}
	return Token{Type: DoctypeToken, Text: strings.TrimSpace(text)}
}

func (z *Tokenizer) endTag() Token {
	z.pos += 2 // </
	start := z.pos
	for z.pos < len(z.src) && isTagNameChar(z.src[z.pos]) {
		z.pos++
	}
	tag := internLower(z.src[start:z.pos])
	// Skip to '>'.
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++
	}
	return Token{Type: EndTagToken, Tag: tag}
}

func (z *Tokenizer) startTag() Token {
	z.pos++ // <
	start := z.pos
	for z.pos < len(z.src) && isTagNameChar(z.src[z.pos]) {
		z.pos++
	}
	tok := Token{Type: StartTagToken, Tag: internLower(z.src[start:z.pos])}
	z.scratch = z.scratch[:0]
	for {
		for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
			z.pos++
		}
		if z.pos >= len(z.src) {
			break
		}
		c := z.src[z.pos]
		if c == '>' {
			z.pos++
			break
		}
		if c == '/' {
			z.pos++
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				tok.Type = SelfClosingTagToken
				break
			}
			continue
		}
		key, val, ok := z.attribute()
		if !ok {
			break
		}
		z.scratch = append(z.scratch, Attr{Key: key, Value: val})
	}
	if len(z.scratch) > 0 {
		if z.reuseAttrs {
			tok.Attrs = z.scratch
		} else {
			tok.Attrs = append([]Attr(nil), z.scratch...)
		}
	}
	if tok.Type == StartTagToken && rawTextTags[tok.Tag] {
		z.rawTag = tok.Tag
	}
	return tok
}

func (z *Tokenizer) attribute() (key, val string, ok bool) {
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if isSpace(c) || c == '=' || c == '>' || c == '/' {
			break
		}
		z.pos++
	}
	if z.pos == start {
		// Unparseable character; skip it to guarantee progress.
		z.pos++
		return "", "", false
	}
	key = internLower(z.src[start:z.pos])
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
	if z.pos >= len(z.src) || z.src[z.pos] != '=' {
		return key, "", true // boolean attribute
	}
	z.pos++ // =
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
	if z.pos >= len(z.src) {
		return key, "", true
	}
	switch quote := z.src[z.pos]; quote {
	case '"', '\'':
		z.pos++
		vstart := z.pos
		for z.pos < len(z.src) && z.src[z.pos] != quote {
			z.pos++
		}
		val = z.src[vstart:z.pos]
		if z.pos < len(z.src) {
			z.pos++
		}
	default:
		vstart := z.pos
		for z.pos < len(z.src) && !isSpace(z.src[z.pos]) && z.src[z.pos] != '>' {
			z.pos++
		}
		val = z.src[vstart:z.pos]
	}
	// Fast path: a value without '&' is returned as the input substring,
	// no decode pass and no allocation.
	if strings.IndexByte(val, '&') >= 0 {
		val = DecodeEntities(val)
	}
	return key, val, true
}

// internNames are the tag and attribute names that dominate real (and
// synthetic) markup. Interning them fixes two costs on the hot path:
// the strings.ToLower allocation for uppercase spellings, and — because
// the canonical string is package-owned — a cached DOM never pins its
// multi-megabyte source body through a tag-name substring.
var internNames = []string{
	// Tags.
	"html", "head", "body", "div", "span", "p", "a", "img", "script",
	"style", "iframe", "link", "meta", "title", "br", "hr", "ul", "ol",
	"li", "table", "tr", "td", "th", "form", "input", "button", "h1",
	"h2", "h3", "h4", "h5", "h6", "header", "footer", "nav", "section",
	"article", "main", "em", "strong", "b", "i", "u", "small", "label",
	"select", "option", "textarea", "video", "audio", "source", "canvas",
	"noscript", "svg", "picture", "figure",
	// Attributes.
	"id", "class", "src", "href", "allow", "sandbox", "srcdoc",
	"loading", "name", "type", "rel", "alt", "width", "height", "value",
	"placeholder", "content", "charset", "lang", "target", "title",
	"data-src", "crossorigin", "referrerpolicy", "allowfullscreen",
	"http-equiv", "role", "media", "integrity", "async", "defer",
}

// maxInternLen bounds the stack buffer internLower lowers into; every
// internNames entry fits.
const maxInternLen = 16

var internTable = func() map[string]string {
	m := make(map[string]string, len(internNames))
	for _, s := range internNames {
		if len(s) > maxInternLen {
			panic("html: intern name longer than maxInternLen: " + s)
		}
		m[s] = s
	}
	return m
}()

// internLower lower-cases an ASCII tag or attribute name without
// allocating: already-lowercase common names map to their interned
// canonical string, already-lowercase uncommon names return the input
// substring unchanged, and only an uppercase uncommon (or non-ASCII)
// name pays the strings.ToLower allocation.
func internLower(s string) string {
	if len(s) == 0 {
		return s
	}
	if len(s) > maxInternLen {
		return strings.ToLower(s)
	}
	var buf [maxInternLen]byte
	hasUpper := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			// Non-ASCII names keep the full Unicode lowering semantics.
			return strings.ToLower(s)
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
			hasUpper = true
		}
		buf[i] = c
	}
	// The map lookup on string(buf[:len(s)]) does not allocate: the Go
	// compiler recognizes the conversion-for-lookup pattern.
	if canon, ok := internTable[string(buf[:len(s)])]; ok {
		return canon
	}
	if !hasUpper {
		return s
	}
	return strings.ToLower(s)
}

// entities is the minimal named-entity table the measurement needs.
var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "copy": "©", "mdash": "—", "hellip": "…",
}

// DecodeEntities decodes named and numeric character references. Input
// without '&' is returned unchanged (the same substring, no copy).
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		// Named entities are short; numeric references get a wider window
		// so long digit runs still decode (they clamp to U+FFFD below)
		// rather than passing through raw.
		window := 12
		if i+1 < len(s) && s[i+1] == '#' {
			window = 32
		}
		if semi < 0 || semi > window {
			b.WriteByte(c)
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if decoded, ok := decodeEntity(name); ok {
			b.WriteString(decoded)
			i += semi + 1
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func decodeEntity(name string) (string, bool) {
	if v, ok := entities[name]; ok {
		return v, true
	}
	if strings.HasPrefix(name, "#") {
		digits := name[1:]
		base := 10
		if strings.HasPrefix(digits, "x") || strings.HasPrefix(digits, "X") {
			digits = digits[1:]
			base = 16
		}
		if digits == "" {
			return "", false
		}
		var n rune
		for _, d := range digits {
			var v rune
			switch {
			case d >= '0' && d <= '9':
				v = d - '0'
			case base == 16 && d >= 'a' && d <= 'f':
				v = d - 'a' + 10
			case base == 16 && d >= 'A' && d <= 'F':
				v = d - 'A' + 10
			default:
				return "", false
			}
			n = n*rune(base) + v
			// Clamp past the Unicode range so long digit runs cannot
			// overflow the rune; the reference still consumes and decodes
			// (to U+FFFD, below).
			if n > 0x10ffff {
				n = 0x110000
			}
		}
		// Spec-mandated replacements (HTML §13.2.5.80): NUL, values
		// outside the Unicode range, and surrogate code points all decode
		// to U+FFFD — never a NUL byte or a raw passthrough.
		if n == 0 || n > 0x10ffff || (n >= 0xd800 && n <= 0xdfff) {
			return "�", true
		}
		return string(n), true
	}
	return "", false
}
