#!/usr/bin/env bash
# Offline-replay gate: a warm crawl with -cache-dir followed by an
# offline re-crawl of the same population must produce byte-identical
# analysis reports with zero network fetches — the archive really does
# turn a crawl into a replayable dataset. CI runs this as the
# offline-replay job; `make replay` runs it locally.
#
# -retries 0 keeps warm and replay exactly comparable: with retries, a
# spuriously-slow first attempt could be archived, then overwritten by
# a successful retry, leaving the replayed retry counts one short.
set -euo pipefail
cd "$(dirname "$0")/.."

SITES="${PERMODYSSEY_REPLAY_SITES:-400}"
# PERMODYSSEY_REPLAY_WORK pins the workdir (CI uploads it as a failure
# artifact); unset, a temp dir is used and cleaned up.
if [ -n "${PERMODYSSEY_REPLAY_WORK:-}" ]; then
    work="$PERMODYSSEY_REPLAY_WORK"
    mkdir -p "$work"
else
    work="$(mktemp -d)"
    trap 'rm -rf "$work"' EXIT
fi

go build -o "$work/permcrawl" ./cmd/permcrawl
go build -o "$work/permreport" ./cmd/permreport

common=(-sites "$SITES" -seed 7 -workers 32 -timeout 2s -retries 0
    -cache-dir "$work/archive")

echo "== warm crawl ($SITES sites, populating the archive) =="
"$work/permcrawl" "${common[@]}" -out "$work/warm.jsonl" \
    -stats-json "$work/warm-stats.json"

echo "== offline replay (network forbidden) =="
"$work/permcrawl" "${common[@]}" -offline -out "$work/replay.jsonl" \
    -stats-json "$work/replay-stats.json"

"$work/permreport" -in "$work/warm.jsonl" -json >"$work/warm-report.json"
"$work/permreport" -in "$work/replay.jsonl" -json >"$work/replay-report.json"

if ! diff -u "$work/warm-report.json" "$work/replay-report.json"; then
    echo "replay gate: warm and offline reports differ" >&2
    exit 1
fi

if ! grep -q '"network_fetches": 0' "$work/replay-stats.json"; then
    echo "replay gate: offline replay reached the network" >&2
    cat "$work/replay-stats.json" >&2
    exit 1
fi

echo "replay gate: reports identical, zero network fetches"
