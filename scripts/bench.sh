#!/usr/bin/env bash
# Benchmark smoke run: every benchmark once (-benchtime 1x) on a reduced
# site count, converted to a BENCH_*.json artifact so the performance
# trajectory accumulates run over run.
#
# Usage: scripts/bench.sh [output.json]
# Scale knobs (defaults are smoke-sized; unset them in-code defaults are
# 1500 shared-dataset sites and the full 20k-site crawl benchmark):
#   PERMODYSSEY_BENCH_SITES        shared analysis dataset size
#   PERMODYSSEY_BENCH_CRAWL_SITES  BenchmarkCrawl{Cached,Uncached} size
#   PERMODYSSEY_BENCH_CHAOS_SITES  BenchmarkCrawlChaos{Blocking,Scheduler} size
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_local.json}"
export PERMODYSSEY_BENCH_SITES="${PERMODYSSEY_BENCH_SITES:-300}"
export PERMODYSSEY_BENCH_CRAWL_SITES="${PERMODYSSEY_BENCH_CRAWL_SITES:-600}"
export PERMODYSSEY_BENCH_CHAOS_SITES="${PERMODYSSEY_BENCH_CHAOS_SITES:-150}"

go test -run '^$' -bench . -benchtime 1x -timeout 30m . \
    | tee /dev/stderr \
    | go run ./cmd/benchjson > "$out"
echo "bench artifact written to $out" >&2
