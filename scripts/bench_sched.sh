#!/usr/bin/env bash
# Scheduler throughput gate: run the chaos crawl benchmarks — the
# blocking-backoff baseline against the host-aware scheduler — archive
# them as a BENCH_SCHED_*.json artifact, and fail unless the scheduler
# beats the baseline by the required wall-clock margin. The fault mix
# retries aggressively, so the gap measures exactly the worker-seconds
# the baseline burns sleeping out backoffs.
#
# Usage: scripts/bench_sched.sh [output.json]
#   PERMODYSSEY_BENCH_CHAOS_SITES  chaos population size (default 300)
#   PERMODYSSEY_SCHED_MIN_WIN      required fractional win (default 0.25)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_SCHED_local.json}"
export PERMODYSSEY_BENCH_CHAOS_SITES="${PERMODYSSEY_BENCH_CHAOS_SITES:-300}"
min_win="${PERMODYSSEY_SCHED_MIN_WIN:-0.25}"

txt="$(mktemp)"
trap 'rm -f "$txt"' EXIT
go test -run '^$' -bench 'BenchmarkCrawlChaos(Blocking|Scheduler)$' -benchtime 3x -timeout 30m . \
    | tee "$txt" >&2
go run ./cmd/benchjson < "$txt" > "$out"
echo "bench artifact written to $out" >&2

blocking="$(awk '$1 ~ /^BenchmarkCrawlChaosBlocking/ {print $3}' "$txt")"
sched="$(awk '$1 ~ /^BenchmarkCrawlChaosScheduler/ {print $3}' "$txt")"
if [ -z "$blocking" ] || [ -z "$sched" ]; then
    echo "bench_sched: missing benchmark results in output" >&2
    exit 1
fi
awk -v b="$blocking" -v s="$sched" -v w="$min_win" 'BEGIN {
    win = (b - s) / b
    printf "scheduler %.2fs/op vs blocking %.2fs/op: %.1f%% wall-clock win (gate: >= %.0f%%)\n",
        s / 1e9, b / 1e9, win * 100, w * 100
    exit win >= w ? 0 : 1
}' >&2
