#!/usr/bin/env bash
# Interpreter throughput gate: run the compile-once benchmarks — the
# tree-walking interpreter against the compiled fast path — archive
# them as a BENCH_INTERP_*.json artifact, and fail unless the compiled
# path beats the tree walk by the required speedup on the loop-heavy
# workload. That workload is where the compiler's slot-resolved locals
# and pooled scope frames replace the tree walk's per-iteration map
# allocations, so the ratio measures exactly the tentpole win.
#
# Usage: scripts/bench_interp.sh [output.json]
#   PERMODYSSEY_INTERP_MIN_SPEEDUP  required tree/compiled ratio (default 2.0)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_INTERP_local.json}"
min_speedup="${PERMODYSSEY_INTERP_MIN_SPEEDUP:-2.0}"

txt="$(mktemp)"
trap 'rm -f "$txt"' EXIT
go test -run '^$' -bench 'BenchmarkInterpret(Small|Loop|Widget)(Tree|Compiled)$' \
    -benchtime 300x -timeout 20m . \
    | tee "$txt" >&2
go run ./cmd/benchjson < "$txt" > "$out"
echo "bench artifact written to $out" >&2

tree="$(awk '$1 ~ /^BenchmarkInterpretLoopTree/ {print $3}' "$txt")"
compiled="$(awk '$1 ~ /^BenchmarkInterpretLoopCompiled/ {print $3}' "$txt")"
if [ -z "$tree" ] || [ -z "$compiled" ]; then
    echo "bench_interp: missing benchmark results in output" >&2
    exit 1
fi
awk -v t="$tree" -v c="$compiled" -v m="$min_speedup" 'BEGIN {
    speedup = t / c
    printf "compiled %.2fms/op vs tree-walk %.2fms/op: %.2fx speedup (gate: >= %.1fx)\n",
        c / 1e6, t / 1e6, speedup, m
    exit speedup >= m ? 0 : 1
}' >&2
