#!/usr/bin/env bash
# Fleet-soak gate: a 4-process chaos crawl over one shared archive,
# merged, must byte-match a single-process crawl of the same seed —
# sharding and merging are invisible in the dataset, the report, and
# the archive. CI runs this as the fleet-soak job; `make fleet-soak`
# runs it locally.
#
# The crawl flags pin the deterministic chaos contract (the same one
# TestChaosResumeEquivalence relies on): every fault whose state could
# plausibly diverge between processes is on, the timing-raced ones
# (slow-loris) are off, -retries 0 keeps the archive's recorded
# outcomes replayable, and -breaker-threshold 0 keeps per-process
# breaker state out of the records.
set -euo pipefail
cd "$(dirname "$0")/.."

SITES="${PERMODYSSEY_FLEET_SITES:-2000}"
PROCS="${PERMODYSSEY_FLEET_PROCS:-4}"
if [ -n "${PERMODYSSEY_FLEET_WORK:-}" ]; then
    work="$PERMODYSSEY_FLEET_WORK"
    mkdir -p "$work"
else
    work="$(mktemp -d)"
    trap 'rm -rf "$work"' EXIT
fi

go build -o "$work/permcrawl" ./cmd/permcrawl
go build -o "$work/permfleet" ./cmd/permfleet
go build -o "$work/permreport" ./cmd/permreport

crawl_flags=(-sites "$SITES" -seed 13 -workers 16 -timeout 2s -retries 0
    -breaker-threshold 0 -chaos
    -chaos-faults reset,malformed-header,oversized-header,redirect-loop,flap,oversized-body)

echo "== single-process baseline ($SITES sites) =="
"$work/permcrawl" "${crawl_flags[@]}" -out "$work/single.jsonl" \
    -stats-json "$work/single-stats.json"

echo "== $PROCS-process fleet over one shared archive =="
"$work/permfleet" -procs "$PROCS" -out "$work/fleet.jsonl" \
    -cache-dir "$work/archive" -expect-records "$SITES" \
    -self "$work/permfleet" -- "${crawl_flags[@]}"

"$work/permreport" -in "$work/single.jsonl" -json >"$work/single-report.json"
"$work/permreport" -in "$work/fleet.jsonl" -json >"$work/fleet-report.json"

if ! diff -u "$work/single-report.json" "$work/fleet-report.json"; then
    echo "fleet gate: merged fleet report diverges from the single-process report" >&2
    exit 1
fi

echo "== offline replay from the merged fleet archive =="
"$work/permcrawl" "${crawl_flags[@]}" -cache-dir "$work/archive" -offline \
    -out "$work/replay.jsonl" -stats-json "$work/replay-stats.json"
"$work/permreport" -in "$work/replay.jsonl" -json >"$work/replay-report.json"

if ! diff -u "$work/single-report.json" "$work/replay-report.json"; then
    echo "fleet gate: offline replay from the merged archive diverges (manifest merge lost data)" >&2
    exit 1
fi
if ! grep -q '"network_fetches": 0' "$work/replay-stats.json"; then
    echo "fleet gate: offline replay reached the network" >&2
    cat "$work/replay-stats.json" >&2
    exit 1
fi

if ls "$work"/archive/manifest-*.jsonl >/dev/null 2>&1; then
    echo "fleet gate: shard manifests survived the merge:" >&2
    ls "$work"/archive/manifest-*.jsonl >&2
    exit 1
fi

echo "fleet gate: $PROCS-process crawl merged byte-identical to single process, replayable offline"
