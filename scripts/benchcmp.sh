#!/usr/bin/env bash
# Compare a fresh BENCH_*.json artifact against a baseline one and fail
# when any benchmark's ns/op regressed past the tolerance. A missing
# baseline (first run, cache miss) is not a failure — the gate only
# bites once a baseline exists.
#
# Usage: scripts/benchcmp.sh baseline.json current.json
#   PERMODYSSEY_BENCH_THRESHOLD  allowed ns/op growth fraction (default 0.35)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:?usage: scripts/benchcmp.sh baseline.json current.json}"
current="${2:?usage: scripts/benchcmp.sh baseline.json current.json}"
threshold="${PERMODYSSEY_BENCH_THRESHOLD:-0.35}"

if [ ! -f "$baseline" ]; then
    echo "benchcmp: no baseline at $baseline; skipping comparison (first run)" >&2
    exit 0
fi

go run ./cmd/benchjson -compare -threshold "$threshold" "$baseline" "$current"
