#!/usr/bin/env bash
# Kill-injection soak: a 4-process fleet crawl in which two workers are
# SIGKILLed mid-crawl at staged points. The supervisor must relaunch
# each with -resume over its own checkpoint, completed ranks must never
# be re-crawled (asserted from the workers' resume counts and the
# driver's summed visited+resumed stats), the shared archive must
# survive its killed writers (orphan fsck + stale-lock stealing), and
# the merged report must still be byte-identical to a single-process
# crawl of the same seed. CI runs this as the kill-soak job;
# `make kill-soak` runs it locally.
#
# The crawl flags pin the same deterministic chaos contract as
# fleet_soak.sh: every timing-raced fault (slow-loris) off, -retries 0,
# -breaker-threshold 0, so record contents cannot depend on how the
# kills interleaved.
set -euo pipefail
cd "$(dirname "$0")/.."

SITES="${PERMODYSSEY_KILL_SITES:-800}"
PROCS=4
if [ -n "${PERMODYSSEY_FLEET_WORK:-}" ]; then
    work="$PERMODYSSEY_FLEET_WORK"
    mkdir -p "$work"
else
    work="$(mktemp -d)"
    trap 'rm -rf "$work"' EXIT
fi

go build -o "$work/permcrawl" ./cmd/permcrawl
go build -o "$work/permfleet" ./cmd/permfleet
go build -o "$work/permreport" ./cmd/permreport

crawl_flags=(-sites "$SITES" -seed 13 -workers 16 -timeout 2s -retries 0
    -breaker-threshold 0 -chaos
    -chaos-faults reset,malformed-header,oversized-header,redirect-loop,flap,oversized-body)

echo "== single-process baseline ($SITES sites) =="
"$work/permcrawl" "${crawl_flags[@]}" -out "$work/single.jsonl"

echo "== $PROCS-process fleet, SIGKILLing workers mid-crawl =="
log="$work/fleet.log"
"$work/permfleet" -procs "$PROCS" -out "$work/fleet.jsonl" \
    -cache-dir "$work/archive" -expect-records "$SITES" \
    -max-restarts 3 -watchdog 2m \
    -self "$work/permfleet" -- "${crawl_flags[@]}" >"$log" 2>&1 &
fleet_pid=$!

# wait_lines FILE THRESHOLD: poll FILE until it holds >= THRESHOLD
# complete lines (or 60s pass), echoing the count reached.
wait_lines() {
    local f=$1 n=$2 deadline=$((SECONDS + 60)) c=0
    while :; do
        c=$(wc -l <"$f" 2>/dev/null || echo 0)
        [ "$c" -ge "$n" ] && break
        if [ "$SECONDS" -ge "$deadline" ]; then
            echo "kill soak: $f stuck at $c/$n lines" >&2
            kill "$fleet_pid" 2>/dev/null || true
            exit 1
        fi
        sleep 0.05
    done
    echo "$c"
}

# Stage the kills: shard 1 early (~25% of its ranks checkpointed),
# shard 2 late (~60%), so recovery is proven from both a short and a
# long completed prefix. Each worker's argv carries its unique
# "-shard i/4", which is what pkill matches.
per_shard=$((SITES / PROCS))
declare -A kill_lines
for spec in "1:$((per_shard / 4))" "2:$((per_shard * 6 / 10))"; do
    shard=${spec%%:*} threshold=${spec##*:}
    lines=$(wait_lines "$work/fleet.jsonl.shard$shard" "$threshold")
    kill_lines[$shard]=$lines
    pkill -KILL -f -- "-shard $shard/$PROCS" || {
        echo "kill soak: no worker process matched -shard $shard/$PROCS" >&2
        kill "$fleet_pid" 2>/dev/null || true
        exit 1
    }
    echo "   SIGKILLed shard $shard worker at $lines checkpointed records"
done

status=0
wait "$fleet_pid" || status=$?
sed 's/^/   | /' "$log"
if [ "$status" -ne 0 ]; then
    echo "kill soak: fleet exited $status — supervisor failed to recover the killed workers" >&2
    exit 1
fi

# Every killed shard must have been relaunched with -resume…
for shard in 1 2; do
    if ! grep -q "shard $shard:.*restarting with -resume" "$log"; then
        echo "kill soak: no -resume relaunch logged for killed shard $shard" >&2
        exit 1
    fi
    # …and must have resumed (not re-crawled) its completed prefix. A
    # SIGKILL can tear at most the final in-flight line, so the resumed
    # count may trail the kill-time count by exactly one.
    resumed=$(sed -n "s/^\[shard $shard\] resuming: \([0-9]*\) records.*/\1/p" "$log" | head -1)
    floor=$((kill_lines[$shard] - 1))
    if [ -z "$resumed" ] || [ "$resumed" -lt "$floor" ]; then
        echo "kill soak: shard $shard resumed ${resumed:-0} records, want >= $floor (killed at ${kill_lines[$shard]}) — completed ranks were re-crawled" >&2
        exit 1
    fi
    echo "   shard $shard resumed $resumed of ${kill_lines[$shard]} checkpointed records"
done

# The summed stats must account for every rank exactly once: ranks
# crawled live + ranks resumed from checkpoints = the population.
stats_line=$(grep '^fleet stats:' "$log" || true)
visited=$(sed -n 's/^fleet stats: visited \([0-9]*\) + resumed.*/\1/p' <<<"$stats_line")
resumed=$(sed -n 's/^fleet stats: visited [0-9]* + resumed \([0-9]*\).*/\1/p' <<<"$stats_line")
if [ -z "$visited" ] || [ $((visited + resumed)) -ne "$SITES" ]; then
    echo "kill soak: visited ${visited:-?} + resumed ${resumed:-?} != $SITES sites — ranks re-crawled or lost" >&2
    exit 1
fi
echo "   accounting: $visited crawled live + $resumed resumed = $SITES"

"$work/permreport" -in "$work/single.jsonl" -json >"$work/single-report.json"
"$work/permreport" -in "$work/fleet.jsonl" -json >"$work/fleet-report.json"
if ! diff -u "$work/single-report.json" "$work/fleet-report.json"; then
    echo "kill soak: report after kill-recovery diverges from the single-process report" >&2
    exit 1
fi

# The archive took two SIGKILLed writers and must still replay the
# whole population offline after its fsck.
"$work/permcrawl" "${crawl_flags[@]}" -cache-dir "$work/archive" -offline \
    -out "$work/replay.jsonl" -stats-json "$work/replay-stats.json"
"$work/permreport" -in "$work/replay.jsonl" -json >"$work/replay-report.json"
if ! diff -u "$work/single-report.json" "$work/replay-report.json"; then
    echo "kill soak: offline replay from the kill-survived archive diverges" >&2
    exit 1
fi
if ! grep -q '"network_fetches": 0' "$work/replay-stats.json"; then
    echo "kill soak: offline replay reached the network" >&2
    exit 1
fi

echo "kill soak: 2 of $PROCS workers SIGKILLed and recovered; merged report byte-identical, archive replayable"
