#!/usr/bin/env bash
# Bundle-replay gate: a chaos crawl sealed into a Web Execution
# Bundle, then replayed with `permreport -from-bundle` — analysis
# only, no browser, network, or interpreter. The gate holds four
# promises from the bundle design:
#
#   1. replay is byte-identical to the crawl-time report,
#   2. replay is >= 10x faster than the crawl that produced it,
#   3. a tampered bundle refuses to analyze (digest verification),
#   4. `-diff-bundles` over an era pair is deterministic.
#
# CI runs this as the bundle-replay job; `make bundle-replay` runs it
# locally.
set -euo pipefail
cd "$(dirname "$0")/.."

SITES="${PERMODYSSEY_BUNDLE_SITES:-500}"
# PERMODYSSEY_BUNDLE_WORK pins the workdir (CI uploads it as a failure
# artifact); unset, a temp dir is used and cleaned up.
if [ -n "${PERMODYSSEY_BUNDLE_WORK:-}" ]; then
    work="$PERMODYSSEY_BUNDLE_WORK"
    mkdir -p "$work"
else
    work="$(mktemp -d)"
    trap 'rm -rf "$work"' EXIT
fi

go build -o "$work/permcrawl" ./cmd/permcrawl
go build -o "$work/permreport" ./cmd/permreport

now_ms() { echo $(($(date +%s%N) / 1000000)); }

echo "== chaos crawl ($SITES sites, sealing a bundle) =="
t0="$(now_ms)"
"$work/permcrawl" -sites "$SITES" -seed 7 -workers 32 -timeout 2s \
    -retries 0 -chaos -out "$work/crawl.jsonl" \
    -cache-dir "$work/archive" -bundle "$work/crawl.bundle"
crawl_ms=$(($(now_ms) - t0))

echo "== replay (analysis only) =="
t0="$(now_ms)"
"$work/permreport" -from-bundle "$work/crawl.bundle" >"$work/replay-report.txt"
replay_ms=$(($(now_ms) - t0))

if ! cmp -s "$work/crawl.bundle/report.txt" "$work/replay-report.txt"; then
    echo "bundle gate: replay differs from the sealed crawl-time report" >&2
    diff -u "$work/crawl.bundle/report.txt" "$work/replay-report.txt" >&2 || true
    exit 1
fi
echo "replay byte-identical (crawl ${crawl_ms}ms, replay ${replay_ms}ms)"

if [ "$crawl_ms" -lt $((10 * (replay_ms > 0 ? replay_ms : 1))) ]; then
    echo "bundle gate: replay not >= 10x faster than the crawl (crawl ${crawl_ms}ms, replay ${replay_ms}ms)" >&2
    exit 1
fi

echo "== tamper detection =="
# Overwrite one byte of the sealed dataset with a NUL (never present
# in JSONL text); verification must fail closed.
printf '\x00' | dd of="$work/crawl.bundle/dataset.jsonl" \
    bs=1 seek=10 count=1 conv=notrunc status=none
if "$work/permreport" -from-bundle "$work/crawl.bundle" \
    >/dev/null 2>"$work/tamper.err"; then
    echo "bundle gate: tampered bundle was accepted" >&2
    exit 1
fi
if ! grep -q "verification failed" "$work/tamper.err"; then
    echo "bundle gate: tampered bundle failed without a verification message:" >&2
    cat "$work/tamper.err" >&2
    exit 1
fi
echo "tampered bundle refused"

echo "== era-pair diff determinism =="
for era in 2020 2024; do
    "$work/permcrawl" -sites 200 -seed 11 -workers 32 -timeout 2s \
        -retries 0 -era "$era" -out "$work/era$era.jsonl" \
        -cache-dir "$work/archive-$era" -bundle "$work/era$era.bundle"
done
"$work/permreport" -diff-bundles "$work/era2020.bundle" "$work/era2024.bundle" \
    >"$work/drift-1.txt" 2>/dev/null
"$work/permreport" -diff-bundles "$work/era2020.bundle" "$work/era2024.bundle" \
    >"$work/drift-2.txt" 2>/dev/null
if ! cmp -s "$work/drift-1.txt" "$work/drift-2.txt"; then
    echo "bundle gate: -diff-bundles is not deterministic" >&2
    diff -u "$work/drift-1.txt" "$work/drift-2.txt" >&2 || true
    exit 1
fi
echo "era drift deterministic ($(wc -l <"$work/drift-1.txt") report lines)"

echo "bundle gate: replay byte-identical at $((crawl_ms / (replay_ms > 0 ? replay_ms : 1)))x, tamper refused, era diff deterministic"
