#!/usr/bin/env bash
# DOM parse throughput gate: run the parse-cache benchmarks — cold
# arena parses against cache-served repeats over a Zipf-popular corpus
# — archive them as a BENCH_PARSE_*.json artifact, and fail unless the
# warm path beats the cold path by the required speedup AND stays under
# the warm allocation ceiling. The Zipf pair measures exactly the
# tentpole win: a shared widget document fetched by many sites parses
# once and is served from the content-addressed cache thereafter; the
# allocation ceiling pins the arena/pooling work (a warm hit is one
# hash-key allocation, not a tree rebuild).
#
# Usage: scripts/bench_parse.sh [output.json]
#   PERMODYSSEY_PARSE_MIN_SPEEDUP      required cold/warm ratio (default 2.0)
#   PERMODYSSEY_PARSE_MAX_WARM_ALLOCS  warm allocs/op ceiling (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PARSE_local.json}"
min_speedup="${PERMODYSSEY_PARSE_MIN_SPEEDUP:-2.0}"
max_allocs="${PERMODYSSEY_PARSE_MAX_WARM_ALLOCS:-3}"

txt="$(mktemp)"
trap 'rm -f "$txt"' EXIT
go test -run '^$' -bench 'BenchmarkParseHTML(Small|Large|Zipf)(Cold|Warm)$|BenchmarkExtract(Three|Single)Walk$' \
    -benchtime 1000x -benchmem -timeout 20m . \
    | tee "$txt" >&2
go run ./cmd/benchjson < "$txt" > "$out"
echo "bench artifact written to $out" >&2

cold="$(awk '$1 ~ /^BenchmarkParseHTMLZipfCold/ {print $3}' "$txt")"
warm="$(awk '$1 ~ /^BenchmarkParseHTMLZipfWarm/ {print $3}' "$txt")"
allocs="$(awk '$1 ~ /^BenchmarkParseHTMLZipfWarm/ {print $(NF-1)}' "$txt")"
if [ -z "$cold" ] || [ -z "$warm" ] || [ -z "$allocs" ]; then
    echo "bench_parse: missing benchmark results in output" >&2
    exit 1
fi
awk -v c="$cold" -v w="$warm" -v a="$allocs" -v m="$min_speedup" -v ma="$max_allocs" 'BEGIN {
    speedup = c / w
    printf "warm %.2fus/op vs cold %.2fus/op: %.2fx speedup (gate: >= %.1fx); warm allocs/op %d (gate: <= %d)\n",
        w / 1e3, c / 1e3, speedup, m, a, ma
    exit (speedup >= m && a <= ma) ? 0 : 1
}' >&2
