#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, and the full test suite under the
# race detector. CI runs this verbatim; `make ci` runs it locally.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...

# Static analysis beyond vet. Local runs use an installed staticcheck
# if present; CI (network available) fetches the pinned version; a dev
# box with neither skips with a notice rather than failing offline.
# PERMODYSSEY_SKIP_STATICCHECK=1 opts out (the CI test job sets it —
# the dedicated staticcheck job owns the check there).
if [ "${PERMODYSSEY_SKIP_STATICCHECK:-}" = "1" ]; then
    :
elif command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
elif [ "${CI:-}" = "true" ]; then
    go run honnef.co/go/tools/cmd/staticcheck@2024.1.1 ./...
else
    echo "ci.sh: staticcheck not installed; skipping (CI runs the pinned version)" >&2
fi

go test -race ./...
