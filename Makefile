# Developer entry points. `make ci` is the local equivalent of the
# GitHub Actions tier-1 gate; `make bench` produces a BENCH_*.json
# perf artifact.

.PHONY: ci test bench bench-sched bench-interp bench-parse benchcmp soak replay bundle-replay fleet-soak kill-soak fmt build

ci:
	./scripts/ci.sh

# Offline-replay gate: warm crawl with -cache-dir, offline re-crawl,
# identical reports, zero network fetches.
replay:
	./scripts/replay.sh

# Bundle-replay gate: chaos crawl sealed into a Web Execution Bundle;
# permreport -from-bundle must reproduce the crawl-time report
# byte-identically at >= 10x the crawl's speed, tampering must be
# refused, and -diff-bundles over an era pair must be deterministic.
bundle-replay:
	./scripts/bundle_replay.sh

# Fleet-soak gate: 4-process sharded chaos crawl over one shared
# archive, merged, byte-identical to a single-process run.
fleet-soak:
	./scripts/fleet_soak.sh

# Kill-injection soak: SIGKILL 2 of 4 fleet workers mid-crawl; the
# supervisor must recover them with -resume and the merged report must
# stay byte-identical to a single-process run.
kill-soak:
	./scripts/kill_soak.sh

test:
	go test ./...

bench:
	./scripts/bench.sh

# Scheduler throughput gate: chaos crawl, blocking baseline vs the
# host-aware scheduler; fails below a 25% wall-clock win.
bench-sched:
	./scripts/bench_sched.sh

# Interpreter throughput gate: tree-walk vs compile-once script
# execution; fails unless the compiled path is >= 2x on the loop
# workload.
bench-interp:
	./scripts/bench_interp.sh

# DOM parse throughput gate: cold arena parses vs cache-served repeats
# over a Zipf corpus; fails unless warm is >= 2x cold and a warm hit
# stays under the allocation ceiling.
bench-parse:
	./scripts/bench_parse.sh

# make benchcmp BASE=BENCH_old.json CUR=BENCH_local.json
benchcmp:
	./scripts/benchcmp.sh $(BASE) $(CUR)

soak:
	go test -race -v -timeout 20m -run 'TestChaos' ./internal/core/

fmt:
	gofmt -w .

build:
	go build ./...
