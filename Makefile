# Developer entry points. `make ci` is the local equivalent of the
# GitHub Actions tier-1 gate; `make bench` produces a BENCH_*.json
# perf artifact.

.PHONY: ci test bench fmt build

ci:
	./scripts/ci.sh

test:
	go test ./...

bench:
	./scripts/bench.sh

fmt:
	gofmt -w .

build:
	go build ./...
